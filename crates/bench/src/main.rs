//! `repro` — regenerate the tables and figures of the OSDI '99 paper
//! *"A Comparison of Windows Driver Model Latency Performance on Windows NT
//! and Windows 98"* on the simulated substrate.
//!
//! ```text
//! repro <artifact> [--minutes N | --full] [--seed S] [--threads T]
//!                  [--shards K] [--out DIR] [--no-compile]
//!                  [--sampler-mode exact|table]
//!
//! artifacts:
//!   table1 table2 table3 table4 figure4 figure5 figure6 figure7
//!   throughput validate-mttf sched feasibility win2000 microbench
//!   interactive stability ablations timing digest all
//! ```
//!
//! `--full` collects for the paper's §3.1 durations (4–12.5 simulated hours
//! per cell); the default is 2 simulated minutes per cell, which reproduces
//! the shape but under-samples the weekly tails. `--threads` fans
//! independent runs out over worker threads (0 or omitted = one per core);
//! output is byte-identical at any thread count. `--shards K` splits each
//! cell's window into up to K independent whole-minute simulations so the
//! fan-out has 8 x K jobs to balance (DESIGN.md §9); a given K is
//! byte-identical at every thread count, and `--shards 1` (the default) is
//! bit-identical to the unsharded harness.

use wdm_bench::{
    cells::{measure_all, summary_digest, Duration, RunConfig},
    extras, figures, forensics, output, progress, tables, timing, tracecmd,
};
use wdm_osmodel::dist::SamplerMode;

const USAGE: &str = "usage: repro <artifact> [--minutes N | --full] [--seed S] [--threads T] [--shards K] [--out DIR] [--trace] [--no-compile] [--no-batch-record] [--sampler-mode exact|table] [--blame-mode topk|threshold|blockmax] [--blame-threshold-ms T] [--blame-top K] [--flame-hz HZ] [--repeats R] [--quiet | --verbose]

artifacts:
  table1 table2 table3 table4 figure4 figure5 figure6 figure7
  throughput validate-mttf sched feasibility win2000 microbench
  interactive stability ablations timing digest trace metrics
  blame flame all

options:
  --minutes N   simulated minutes per cell (positive number; default 2)
  --full        the paper's full per-workload collection times (\u{a7}3.1)
  --seed S      base RNG seed (non-negative integer; default 1999)
  --threads T   worker threads for independent runs (0 = one per core)
  --shards K    time shards per cell, on whole-minute boundaries (default 1)
  --out DIR     also write TSV/JSON artifacts into DIR
  --trace       attach a flight recorder to every cell (output unchanged;
                the 'trace' artifact implies this and writes TRACE_*.json)
  --no-compile  run programs through the step interpreter instead of the
                compiled instruction streams (output byte-identical)
  --no-batch-record
                record each latency sample straight into its series instead
                of staging and batch-folding (output byte-identical)
  --sampler-mode exact|table
                how distribution draws are lowered: 'exact' (default) is
                bit-identical to the interpreted samplers; 'table' uses
                quantile-table inverse-CDF lookups (own digest baseline,
                artifacts/CELL_digests_table.txt)
  --blame-mode topk|threshold|blockmax
                which latency samples trigger a forensic capture (DESIGN.md
                \u{a7}15): the K largest per cell (default), samples at or above
                --blame-threshold-ms, or new per-cell running maxima. The
                'blame' artifact arms forensics; these flags tune it.
                Digest-neutral: measured values never change
  --blame-threshold-ms T
                trigger threshold for --blame-mode threshold (default 1.0)
  --blame-top K retained episodes per cell (default 4)
  --flame-hz HZ virtual-time sampling rate for the 'flame' artifact in
                samples per simulated second (default 8000)
  --repeats R   wall-clock attempts per timing side; each cell reports its
                fastest attempt (timing artifact only; default 3 for quick
                grids, 1 for --full)
  --quiet       suppress progress lines on stderr
  --verbose     per-shard progress lines on stderr";

/// Reports a bad invocation and exits with status 2 (no panic backtrace).
fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// Reports a runtime failure (I/O, serialization) and exits with status 1.
/// Prints regardless of `--quiet`: errors are not progress.
fn fatal(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("repro: error: {what}: {err}");
    std::process::exit(1);
}

/// Pulls the value of `--flag value`, failing with usage on a missing or
/// malformed value.
fn flag_value<T: std::str::FromStr>(args: &[String], i: &mut usize, what: &str) -> T {
    *i += 1;
    let raw = args
        .get(*i)
        .unwrap_or_else(|| usage_error(&format!("{what} requires a value")));
    raw.parse().unwrap_or_else(|_| {
        usage_error(&format!("invalid value '{raw}' for {what}"))
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut duration = Duration::Minutes(2.0);
    let mut seed = 1999u64;
    let mut threads = 0usize;
    let mut shards = 1usize;
    let mut trace = false;
    let mut compile = true;
    let mut batch_record = true;
    let mut sampler_mode = SamplerMode::Exact;
    let mut blame_mode: Option<String> = None;
    let mut blame_threshold_ms = 1.0f64;
    let mut blame_top = 4usize;
    let mut flame_hz: Option<f64> = None;
    let mut repeats: Option<usize> = None;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut verbosity: Option<progress::Verbosity> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--minutes" => {
                let m: f64 = flag_value(&args, &mut i, "--minutes");
                if !(m.is_finite() && m > 0.0) {
                    usage_error("--minutes must be a positive number");
                }
                duration = Duration::Minutes(m);
            }
            "--full" => duration = Duration::FullCollection,
            "--seed" => seed = flag_value(&args, &mut i, "--seed"),
            "--threads" => threads = flag_value(&args, &mut i, "--threads"),
            "--shards" => {
                shards = flag_value(&args, &mut i, "--shards");
                if shards < 1 {
                    usage_error("--shards must be at least 1");
                }
            }
            "--trace" => trace = true,
            "--no-compile" => compile = false,
            "--no-batch-record" => batch_record = false,
            "--blame-mode" => {
                let raw: String = flag_value(&args, &mut i, "--blame-mode");
                match raw.as_str() {
                    "topk" | "threshold" | "blockmax" => blame_mode = Some(raw),
                    _ => usage_error(&format!(
                        "invalid value '{raw}' for --blame-mode (expected 'topk', \
                         'threshold', or 'blockmax')"
                    )),
                }
            }
            "--blame-threshold-ms" => {
                blame_threshold_ms = flag_value(&args, &mut i, "--blame-threshold-ms");
                if !(blame_threshold_ms.is_finite() && blame_threshold_ms > 0.0) {
                    usage_error("--blame-threshold-ms must be a positive number");
                }
            }
            "--blame-top" => {
                blame_top = flag_value(&args, &mut i, "--blame-top");
                if blame_top < 1 {
                    usage_error("--blame-top must be at least 1");
                }
            }
            "--flame-hz" => {
                let hz: f64 = flag_value(&args, &mut i, "--flame-hz");
                if !(hz.is_finite() && hz > 0.0) {
                    usage_error("--flame-hz must be a positive number");
                }
                flame_hz = Some(hz);
            }
            "--repeats" => {
                let r: usize = flag_value(&args, &mut i, "--repeats");
                if r < 1 {
                    usage_error("--repeats must be at least 1");
                }
                repeats = Some(r);
            }
            "--sampler-mode" => {
                let raw: String = flag_value(&args, &mut i, "--sampler-mode");
                sampler_mode = SamplerMode::parse(&raw).unwrap_or_else(|| {
                    usage_error(&format!(
                        "invalid value '{raw}' for --sampler-mode (expected 'exact' or 'table')"
                    ))
                });
            }
            "--quiet" => {
                if verbosity == Some(progress::Verbosity::Verbose) {
                    usage_error("--quiet and --verbose are mutually exclusive");
                }
                verbosity = Some(progress::Verbosity::Quiet);
            }
            "--verbose" => {
                if verbosity == Some(progress::Verbosity::Quiet) {
                    usage_error("--quiet and --verbose are mutually exclusive");
                }
                verbosity = Some(progress::Verbosity::Verbose);
            }
            "--out" => {
                i += 1;
                let dir = args
                    .get(i)
                    .unwrap_or_else(|| usage_error("--out requires a directory"));
                if dir.is_empty() || dir.starts_with('-') {
                    usage_error(&format!("invalid directory '{dir}' for --out"));
                }
                out_dir = Some(std::path::PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            a if !a.starts_with('-') && artifact.is_none() => {
                artifact = Some(a.to_string());
            }
            other => usage_error(&format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let artifact = artifact.unwrap_or_else(|| "all".to_string());
    if let Some(v) = verbosity {
        progress::set_verbosity(v);
    }
    // The 'blame' artifact arms forensics; --blame-* flags tune the trigger
    // (and a bare `repro blame` captures the default per-cell top-K).
    let blame = (artifact == "blame" || blame_mode.is_some()).then(|| {
        let trigger = match blame_mode.as_deref() {
            Some("threshold") => wdm_latency::BlameTrigger::ThresholdMs(blame_threshold_ms),
            Some("blockmax") => wdm_latency::BlameTrigger::BlockMax,
            _ => wdm_latency::BlameTrigger::TopK(blame_top),
        };
        wdm_latency::BlameOptions { trigger, max_episodes: blame_top }
    });
    let cfg = RunConfig {
        duration,
        seed,
        threads,
        shards,
        trace,
        compile,
        sampler_mode,
        batch_record,
        blame,
        // The 'flame' artifact arms the sampler at its default rate; an
        // explicit --flame-hz arms it for any artifact (digest included —
        // CI proves sampling is digest-neutral that way).
        flame_hz: if artifact == "flame" {
            Some(flame_hz.unwrap_or(8000.0))
        } else {
            flame_hz
        },
    };
    let minutes = match duration {
        Duration::Minutes(m) => m,
        Duration::FullCollection => 30.0,
    };

    // Artifacts that need the 8 measured cells share one run.
    let needs_cells = matches!(
        artifact.as_str(),
        "table3" | "figure4" | "figure6" | "figure7" | "throughput" | "sched" | "feasibility"
            | "digest" | "metrics" | "all"
    );
    let cells = if needs_cells {
        progress::note(
            "grid",
            &format!("measuring 8 OS x workload cells ({duration:?}, seed {seed})..."),
        );
        Some(measure_all(&cfg))
    } else {
        None
    };
    let cells = cells.as_ref();

    match artifact.as_str() {
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" => {
            print!("{}", tables::table3(cells.unwrap()));
            println!();
            print!("{}", tables::table3_nt(cells.unwrap()));
        }
        "table4" => print!("{}", tables::table4(&cfg)),
        "figure4" => {
            print!("{}", figures::figure4(cells.unwrap()));
            if let Some(dir) = &out_dir {
                let files = output::write_figure4(cells.unwrap(), dir)
                    .unwrap_or_else(|e| fatal("writing figure4 TSVs", e));
                for f in files {
                    progress::note("out", &format!("wrote {f}"));
                }
            }
        }
        "figure5" => {
            let f = figures::figure5(&cfg);
            print!("{}", figures::render_figure5(&f));
            if let Some(dir) = &out_dir {
                let path = output::write_figure5(&f, dir)
                    .unwrap_or_else(|e| fatal("writing figure5 TSV", e));
                progress::note("out", &format!("wrote {path}"));
            }
        }
        "figure6" | "figure7" => {
            print!("{}", figures::figures_6_7(cells.unwrap()));
            if let Some(dir) = &out_dir {
                let files = output::write_figures_6_7(cells.unwrap(), dir)
                    .unwrap_or_else(|e| fatal("writing figure 6/7 TSVs", e));
                for f in files {
                    progress::note("out", &format!("wrote {f}"));
                }
            }
        }
        "throughput" => print!("{}", extras::throughput(cells.unwrap())),
        "validate-mttf" => print!("{}", extras::validate(&cfg)),
        "win2000" => print!("{}", extras::win2000(&cfg)),
        "microbench" => print!("{}", extras::microbench(&cfg)),
        "interactive" => print!("{}", extras::interactive(&cfg)),
        "stability" => print!("{}", extras::stability(&cfg, 5)),
        "sched" => print!("{}", extras::sched(cells.unwrap())),
        "feasibility" => print!("{}", extras::feasibility(cells.unwrap())),
        "ablations" => print!("{}", extras::ablations(minutes.min(5.0), seed, threads)),
        "digest" => {
            // One exact digest line per cell, NT first, paper workload
            // order. CI diffs this against a committed reference to prove
            // the harness still reproduces the recorded runs bit-for-bit.
            let cells = cells.unwrap();
            for m in cells.nt.iter().chain(&cells.win98) {
                println!("{}", summary_digest(m));
            }
        }
        "timing" => {
            progress::note(
                "grid",
                &format!(
                    "timing the 8-cell grid ({shards} shard(s)/cell), serial vs {} threads \
                     on {} host cores ({duration:?}, seed {seed})...",
                    wdm_bench::parallel::effective_threads(threads, 8 * shards),
                    wdm_bench::parallel::host_cores()
                ),
            );
            let r = timing::run(&cfg, repeats);
            print!("{}", timing::render_summary(&r));
            let json = timing::render_json(&cfg, &r);
            println!("{json}");
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fatal("creating output directory", e));
                let path = dir.join("BENCH_cells.json");
                std::fs::write(&path, &json)
                    .unwrap_or_else(|e| fatal("writing BENCH_cells.json", e));
                progress::note("out", &format!("wrote {}", path.display()));
            }
            if !r.identical {
                eprintln!("repro: error: parallel output differs from the serial reference");
                std::process::exit(1);
            }
        }
        "trace" => {
            let dir = out_dir
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts"));
            progress::note(
                "grid",
                &format!(
                    "tracing 8 OS x workload cells ({duration:?}, seed {seed}) \
                     into {}...",
                    dir.display()
                ),
            );
            let (_cells, files) = tracecmd::run_trace(&cfg, &dir)
                .unwrap_or_else(|e| fatal("writing trace files", e));
            for f in &files {
                progress::note("out", &format!("wrote {}", f.display()));
            }
        }
        "blame" => {
            let dir = out_dir
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts"));
            progress::note(
                "grid",
                &format!(
                    "blame-profiling 8 OS x workload cells ({duration:?}, seed {seed}) \
                     into {}...",
                    dir.display()
                ),
            );
            let (_cells, files) = forensics::run_blame(&cfg, &dir)
                .unwrap_or_else(|e| fatal("writing blame files", e));
            for f in &files {
                progress::note("out", &format!("wrote {}", f.display()));
            }
        }
        "flame" => {
            let dir = out_dir
                .clone()
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts"));
            progress::note(
                "grid",
                &format!(
                    "flame-profiling 8 OS x workload cells ({duration:?}, seed {seed}) \
                     into {}...",
                    dir.display()
                ),
            );
            let (_cells, files) = forensics::run_flame(&cfg, &dir)
                .unwrap_or_else(|e| fatal("writing flame files", e));
            for f in &files {
                progress::note("out", &format!("wrote {}", f.display()));
            }
        }
        "metrics" => {
            let json = tracecmd::render_metrics_json(&cfg, cells.unwrap());
            print!("{json}");
            if let Some(dir) = &out_dir {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fatal("creating output directory", e));
                let path = dir.join("METRICS_cells.json");
                std::fs::write(&path, &json)
                    .unwrap_or_else(|e| fatal("writing METRICS_cells.json", e));
                progress::note("out", &format!("wrote {}", path.display()));
            }
        }
        "all" => {
            let cells = cells.unwrap();
            let hr = "\n================================================================\n\n";
            print!("{}", tables::table1());
            print!("{hr}");
            print!("{}", tables::table2());
            print!("{hr}");
            print!("{}", figures::figure4(cells));
            print!("{hr}");
            print!("{}", tables::table3(cells));
            println!();
            print!("{}", tables::table3_nt(cells));
            print!("{hr}");
            let f5 = figures::figure5(&cfg);
            print!("{}", figures::render_figure5(&f5));
            print!("{hr}");
            print!("{}", tables::table4(&cfg));
            print!("{hr}");
            print!("{}", figures::figures_6_7(cells));
            print!("{hr}");
            print!("{}", extras::throughput(cells));
            print!("{hr}");
            print!("{}", extras::validate(&cfg));
            print!("{hr}");
            print!("{}", extras::sched(cells));
            print!("{hr}");
            print!("{}", extras::feasibility(cells));
            print!("{hr}");
            print!("{}", extras::win2000(&cfg));
            print!("{hr}");
            print!("{}", extras::microbench(&cfg));
            print!("{hr}");
            print!("{}", extras::interactive(&cfg));
            print!("{hr}");
            print!("{}", extras::ablations(minutes.min(5.0), seed, threads));
            if let Some(dir) = &out_dir {
                let f4 = output::write_figure4(cells, dir)
                    .unwrap_or_else(|e| fatal("writing figure4 TSVs", e));
                let f67 = output::write_figures_6_7(cells, dir)
                    .unwrap_or_else(|e| fatal("writing figure 6/7 TSVs", e));
                let p5 = output::write_figure5(&f5, dir)
                    .unwrap_or_else(|e| fatal("writing figure5 TSV", e));
                for f in f4.iter().chain(&f67).chain(std::iter::once(&p5)) {
                    progress::note("out", &format!("wrote {f}"));
                }
            }
        }
        other => usage_error(&format!("unknown artifact '{other}'")),
    }
}
