//! The `repro blame` and `repro flame` artifacts (DESIGN.md §15).
//!
//! `blame` re-runs the 8-cell grid with tail-episode forensics armed and
//! writes `BLAME_cells.json` — run parameters, per-cell blame counters
//! (merged exactly across shards through the metrics registry), and the
//! retained episodes' summary records — plus one
//! `TRACE_blame_<os>_<workload>_<k>.json` Perfetto document per retained
//! episode, with the episode window highlighted on its own track.
//!
//! `flame` re-runs the grid with the virtual-time sampling profiler armed
//! and writes `FLAME_cells.folded`: collapsed stacks in the
//! `stack;frames count` format consumed by inferno / flamegraph.pl, with
//! each cell's stacks rooted at its `<os>_<workload>` stem so one file
//! holds the whole grid.
//!
//! Both artifacts are digest-neutral: the forensic payloads ride their own
//! measurement fields and CI's blame-smoke job diffs `repro digest`
//! bit-for-bit against the committed baseline with forensics armed.

use std::io;
use std::path::{Path, PathBuf};

use wdm_latency::BlameTrigger;

use crate::{
    cells::{measure_all, AllCells, Duration, RunConfig},
    tracecmd::cell_stem,
};

/// The blame counters mirrored into `BLAME_cells.json`, in file order.
const COMPONENTS: [&str; 7] = [
    "isr", "dpc", "masked", "dispatch", "preempt", "quantum", "idle",
];

/// `"topk"` / `"threshold"` / `"blockmax"` — the trigger name used in both
/// the CLI (`--blame-mode`) and `BLAME_cells.json`.
pub fn trigger_name(t: BlameTrigger) -> &'static str {
    match t {
        BlameTrigger::TopK(_) => "topk",
        BlameTrigger::ThresholdMs(_) => "threshold",
        BlameTrigger::BlockMax => "blockmax",
    }
}

/// Renders `BLAME_cells.json`: run parameters plus each cell's blame
/// aggregates and retained episode summaries, NT first, paper workload
/// order. The per-episode `meta` objects are the episodes' own summary
/// JSON, embedded verbatim.
pub fn render_blame_json(cfg: &RunConfig, cells: &AllCells) -> String {
    let opts = cfg.blame.expect("blame artifact runs with forensics armed");
    let minutes = match cfg.duration {
        Duration::Minutes(m) => m,
        Duration::FullCollection => -1.0, // sentinel: full §3.1 durations
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"minutes_per_cell\": {minutes},\n"));
    out.push_str(&format!("  \"shards\": {},\n", cfg.shards));
    out.push_str(&format!("  \"trigger\": \"{}\",\n", trigger_name(opts.trigger)));
    out.push_str(&format!("  \"max_episodes\": {},\n", opts.max_episodes));
    out.push_str("  \"cells\": [\n");
    let all: Vec<_> = cells.nt.iter().chain(&cells.win98).collect();
    for (i, m) in all.iter().enumerate() {
        let c = |name: &str| m.metrics.counter_value(name).unwrap_or(0);
        out.push_str(&format!(
            "    {{\"os\": \"{:?}\", \"workload\": \"{:?}\",\n",
            m.os, m.workload
        ));
        out.push_str(&format!(
            "     \"watched_resumes\": {}, \"triggered\": {}, \"evicted\": {}, \
             \"retained\": {},\n",
            c("latency.blame.watched_resumes"),
            c("latency.blame.triggered"),
            c("latency.blame.evicted"),
            m.blame_episodes.len(),
        ));
        let comps: Vec<String> = COMPONENTS
            .iter()
            .map(|k| format!("\"{k}\": {}", c(&format!("latency.blame.{k}_cycles"))))
            .collect();
        out.push_str(&format!("     \"blame_cycles\": {{{}}},\n", comps.join(", ")));
        out.push_str("     \"episodes\": [");
        let metas: Vec<&str> = m.blame_episodes.iter().map(|(_, meta, _)| meta.as_str()).collect();
        out.push_str(&metas.join(", "));
        out.push_str(&format!("]}}{}\n", if i + 1 < all.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the blame-armed grid and writes `BLAME_cells.json` plus one trace
/// document per retained episode into `dir`. Returns the cells and the
/// paths written, the summary file first.
pub fn run_blame(cfg: &RunConfig, dir: &Path) -> io::Result<(AllCells, Vec<PathBuf>)> {
    let cells = measure_all(cfg);
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let path = dir.join("BLAME_cells.json");
    std::fs::write(&path, render_blame_json(cfg, &cells))?;
    written.push(path);
    for m in cells.nt.iter().chain(&cells.win98) {
        for (k, (_, _, trace)) in m.blame_episodes.iter().enumerate() {
            let path = dir.join(format!("TRACE_blame_{}_{}.json", cell_stem(m), k));
            std::fs::write(&path, trace)?;
            written.push(path);
        }
    }
    Ok((cells, written))
}

/// Renders `FLAME_cells.folded`: every cell's collapsed virtual-time
/// stacks, rooted at the cell stem (`nt4_business;isr vec12 42`). Cells in
/// paper order, stacks in lexicographic order within a cell — the whole
/// file is deterministic and diffs cleanly.
pub fn render_flame_folded(cells: &AllCells) -> String {
    let mut out = String::new();
    for m in cells.nt.iter().chain(&cells.win98) {
        let stem = cell_stem(m);
        for (stack, count) in &m.flame {
            out.push_str(&format!("{stem};{stack} {count}\n"));
        }
    }
    out
}

/// Runs the flame-armed grid and writes `FLAME_cells.folded` into `dir`.
pub fn run_flame(cfg: &RunConfig, dir: &Path) -> io::Result<(AllCells, Vec<PathBuf>)> {
    assert!(cfg.flame_hz.is_some(), "flame artifact runs with the sampler armed");
    let cells = measure_all(cfg);
    std::fs::create_dir_all(dir)?;
    let path = dir.join("FLAME_cells.folded");
    std::fs::write(&path, render_flame_folded(&cells))?;
    Ok((cells, vec![path]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdm_latency::BlameOptions;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 7,
            threads: 1,
            blame: Some(BlameOptions::default()),
            flame_hz: Some(8000.0),
            ..RunConfig::default()
        }
    }

    #[test]
    fn blame_json_lists_cells_with_exact_component_sums() {
        let cells = measure_all(&tiny_cfg());
        let j = render_blame_json(&tiny_cfg(), &cells);
        assert_eq!(j.matches("\"blame_cycles\":").count(), 8);
        assert!(j.contains("\"trigger\": \"topk\""));
        assert!(j.contains("\"breakdown_cycles\":"), "episode metas embedded");
        let depth = j.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced json");
        // Some cell retained at least one episode under the default top-K.
        assert!(cells.nt.iter().chain(&cells.win98).any(|m| !m.blame_episodes.is_empty()));
    }

    #[test]
    fn flame_folded_is_cell_rooted_and_positive() {
        let cells = measure_all(&tiny_cfg());
        let folded = render_flame_folded(&cells);
        assert!(!folded.is_empty());
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack count");
            assert!(stack.contains(';'), "cell-rooted: {line}");
            assert!(count.parse::<u64>().expect("count") > 0);
        }
        assert!(folded.contains("nt4_business;"));
        assert!(folded.contains("win98_games;"));
    }

    #[test]
    fn blame_files_write_one_trace_per_retained_episode() {
        let dir = std::env::temp_dir().join(format!("wdm_blame_test_{}", std::process::id()));
        let (cells, files) = run_blame(&tiny_cfg(), &dir).expect("blame run");
        let retained: usize = cells
            .nt
            .iter()
            .chain(&cells.win98)
            .map(|m| m.blame_episodes.len())
            .sum();
        assert_eq!(files.len(), 1 + retained);
        for f in &files[1..] {
            let doc = std::fs::read_to_string(f).unwrap();
            assert!(doc.starts_with("{\"traceEvents\":["));
            assert!(doc.contains("\"episode window\""));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
