//! Regeneration of the paper's figures.
//!
//! - **Figure 4**: six log-log latency distribution panels, one per
//!   OS x service, each with the four workload series.
//! - **Figure 5**: the virus scanner's effect on Windows 98 thread latency.
//! - **Figures 6–7**: soft modem mean-time-to-underrun vs buffering for
//!   DPC-based and thread-based datapumps on Windows 98.

use wdm_analysis::mttf::{fig6_axis, fig7_axis, mttf_seconds, MttfParams, MTTF_MARKS_S};
use wdm_latency::{
    report::{render_panel, PanelSeries},
    session::{measure_scenario, MeasureOptions, ScenarioMeasurement},
};
use wdm_osmodel::personality::OsKind;
use wdm_workloads::WorkloadKind;

use crate::cells::{cell_seed, AllCells, RunConfig};

/// Renders the six Figure 4 panels from measured cells.
pub fn figure4(cells: &AllCells) -> String {
    let mut out = String::from(
        "Figure 4: Measured Interrupt and Thread Latencies under Load\n\
         (percent of samples per log2 bin; compare tails, not bodies)\n\n",
    );
    let panel = |title: &str, ms: &[&ScenarioMeasurement], f: &dyn Fn(&ScenarioMeasurement) -> &wdm_latency::LatencyHistogram| {
        let series: Vec<PanelSeries<'_>> = ms
            .iter()
            .map(|m| PanelSeries {
                workload: m.workload.name(),
                hist: f(m),
            })
            .collect();
        render_panel(title, &series)
    };
    let nt: Vec<&ScenarioMeasurement> = cells.nt.iter().collect();
    let w98: Vec<&ScenarioMeasurement> = cells.win98.iter().collect();
    out += &panel(
        "Windows NT 4.0 DPC Interrupt Latency (ms)",
        &nt,
        &|m| &m.int_to_dpc.hist,
    );
    out.push('\n');
    out += &panel("Windows 98 Interrupt + DPC Latency (ms)", &w98, &|m| {
        &m.int_to_dpc.hist
    });
    out.push('\n');
    out += &panel(
        "Windows NT 4.0 Kernel Mode Thread (RT Priority 28) Latency (ms)",
        &nt,
        &|m| &m.thread_lat_28.hist,
    );
    out.push('\n');
    out += &panel(
        "Windows 98 Kernel Mode Thread (RT Priority 28) Latency (ms)",
        &w98,
        &|m| &m.thread_lat_28.hist,
    );
    out.push('\n');
    out += &panel(
        "Windows NT 4.0 Kernel Mode Thread (RT Priority 24) Latency (ms)",
        &nt,
        &|m| &m.thread_lat_24.hist,
    );
    out.push('\n');
    out += &panel(
        "Windows 98 Kernel Mode Thread (RT Priority 24) Latency (ms)",
        &w98,
        &|m| &m.thread_lat_24.hist,
    );
    out
}

/// Result of the Figure 5 experiment.
pub struct Figure5 {
    /// Distribution without the scanner.
    pub without: ScenarioMeasurement,
    /// Distribution with the scanner.
    pub with: ScenarioMeasurement,
}

impl Figure5 {
    /// Frequency of >=16 ms thread (RT 24) latencies per wait, scanner off.
    pub fn freq_without(&self) -> f64 {
        per_wait_frequency(&self.without, 16.0)
    }

    /// Same with the scanner on.
    pub fn freq_with(&self) -> f64 {
        per_wait_frequency(&self.with, 16.0)
    }

    /// The separation factor (paper: about two orders of magnitude).
    pub fn separation(&self) -> f64 {
        let w = self.freq_with();
        let wo = self.freq_without();
        if wo <= 0.0 {
            f64::INFINITY
        } else {
            w / wo
        }
    }
}

fn per_wait_frequency(m: &ScenarioMeasurement, threshold_ms: f64) -> f64 {
    let over = m.thread_lat_24.hist.survival(threshold_ms);
    // survival is per recorded latency sample; every recorded sample is one
    // satisfied wait.
    over
}

/// Runs the Figure 5 experiment: Business apps on Windows 98, no sound
/// scheme, virus scanner off vs on.
pub fn figure5(cfg: &RunConfig) -> Figure5 {
    let hours = cfg.duration.hours_for(WorkloadKind::Business);
    let seed = cell_seed(cfg.seed, OsKind::Win98, WorkloadKind::Business) ^ 0xF16;
    // The two runs are independent simulations; fan them out.
    let threads = crate::parallel::effective_threads(cfg.threads, 2);
    let mut runs = crate::parallel::parallel_map(2, threads, |i| {
        let mut opts = MeasureOptions::default();
        opts.scenario.virus_scanner = i == 1;
        measure_scenario(OsKind::Win98, WorkloadKind::Business, seed, hours, &opts)
    });
    let with = runs.pop().expect("two runs");
    let without = runs.pop().expect("two runs");
    Figure5 { without, with }
}

/// Renders Figure 5.
pub fn render_figure5(f: &Figure5) -> String {
    let mut out = String::from(
        "Figure 5: Effect of the Virus Scanner on Win98 RT-24 Thread Latency\n\
         (Business apps, no sound scheme)\n\n",
    );
    out += &render_panel(
        "Windows 98 Kernel Mode Thread (RT Priority 24) Latency (ms)",
        &[
            PanelSeries {
                workload: "w/o Virus Scanner",
                hist: &f.without.thread_lat_24.hist,
            },
            PanelSeries {
                workload: "with Virus Scanner",
                hist: &f.with.thread_lat_24.hist,
            },
        ],
    );
    out += &format!(
        "\nP(thread latency >= 16 ms per wait):\n  \
         without scanner: {:.3e} (paper: ~1 in 165,000 waits = 6.1e-6)\n  \
         with scanner:    {:.3e} (paper: ~1 in 1,000 waits = 1.0e-3)\n  \
         separation:      {:.0}x (paper: ~two orders of magnitude)\n",
        f.freq_without(),
        f.freq_with(),
        f.separation()
    );
    out
}

/// Renders Figures 6 and 7 from the Windows 98 cells: MTTF curves per
/// workload for the two datapump modalities.
pub fn figures_6_7(cells: &AllCells) -> String {
    let params = MttfParams::default();
    let render = |title: &str, axis: &[f64], pick: &dyn Fn(&ScenarioMeasurement) -> &wdm_latency::LatencyHistogram| {
        let mut out = format!("=== {title} ===\n");
        out += &format!("{:<14}", "buffering ms");
        for m in &cells.win98 {
            out += &format!("{:>22}", m.workload.name());
        }
        out.push('\n');
        for &b in axis {
            out += &format!("{b:<14}");
            for m in &cells.win98 {
                let v = mttf_seconds(pick(m), b, &params);
                let cell = if v.is_infinite() {
                    format!("{:>21}s", ">10000")
                } else {
                    format!("{:>21.1}s", v)
                };
                out += &cell;
            }
            out.push('\n');
        }
        out += "marks: ";
        for (s, label) in MTTF_MARKS_S {
            out += &format!("{label} = {s} s;  ");
        }
        out.push('\n');
        out
    };
    let mut out = String::from(
        "Soft modem mean time to buffer underrun on Windows 98, data transfer\n\
         mode (datapump = 25% of a cycle on a P-II 300; double buffered).\n\n",
    );
    out += &render(
        "Figure 6: DPC-based datapump (indexed by interrupt+DPC latency)",
        &fig6_axis(),
        &|m| &m.int_to_dpc.hist,
    );
    out.push('\n');
    out += &render(
        "Figure 7: Thread-based datapump, high RT priority (indexed by interrupt-to-thread latency)",
        &fig7_axis(),
        &|m| &m.thread_int_28.hist,
    );
    out.push_str(
        "\nNT 4.0: worst-case latencies sit below the minimum modem slack time\n\
         of 3 ms, so the paper forgoes the NT analysis (§5.1); see `repro sched`.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{measure_all, Duration};

    fn quick_cfg() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 5,
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        }
    }

    #[test]
    fn figure4_renders_all_panels() {
        let cells = measure_all(&quick_cfg());
        let f = figure4(&cells);
        assert_eq!(f.matches("===").count(), 12, "six panels");
        assert!(f.contains("Windows 98 Kernel Mode Thread (RT Priority 24)"));
        assert!(f.contains("Business Apps"));
        assert!(f.contains("Web Browsing"));
    }

    #[test]
    fn figures_6_7_render_curves() {
        let cells = measure_all(&quick_cfg());
        let f = figures_6_7(&cells);
        assert!(f.contains("Figure 6"));
        assert!(f.contains("Figure 7"));
        assert!(f.contains("1 hour"));
    }
}
