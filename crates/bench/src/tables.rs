//! Regeneration of the paper's tables.
//!
//! - **Table 1**: latency tolerances (analytic, `wdm-analysis`).
//! - **Table 2**: the test system configuration (`wdm-osmodel`).
//! - **Table 3**: Windows 98 hourly/daily/weekly worst cases, 7 service
//!   rows x 4 workloads.
//! - **Table 4**: latency cause tool episode traces.

use wdm_latency::{
    report::{render_table3, Table3Row},
    session::{measure_scenario, MeasureOptions, ScenarioMeasurement},
    worstcase::{worst_cases, WorstCases},
};
use wdm_osmodel::{machine, personality::OsKind, perturb::SoundScheme};
use wdm_workloads::WorkloadKind;

use crate::cells::{cell_seed, AllCells, RunConfig};

/// Renders Table 1.
pub fn table1() -> String {
    format!(
        "Table 1: Range of Latency Tolerances for Several Multimedia and\n\
         Signal Processing Applications\n\n{}",
        wdm_analysis::tolerance::render_table1()
    )
}

/// Renders Table 2.
pub fn table2() -> String {
    let mut out = format!(
        "Table 2: Test System Configuration (simulated)\n\n{}\n",
        machine::render_table2()
    );
    out += "Simulator parameters:\n";
    for os in OsKind::ALL {
        out += &format!("  {}\n", machine::render_sim_config(os));
    }
    out
}

/// The seven Table 3 service rows for one workload cell. "+" rows are the
/// deltas between adjacent absolute rows, as the paper presents them.
fn table3_cells(m: &ScenarioMeasurement) -> [WorstCases; 7] {
    let (h, d, w) = m.usage.windows();
    let wc = |s| worst_cases(s, m.collected_hours, h, d, w);
    let isr = wc(&m.int_to_isr);
    let dpc = wc(&m.int_to_dpc);
    let thr_hi = wc(&m.thread_int_28);
    let thr_med = wc(&m.thread_int_24);
    let delta = |a: &WorstCases, b: &WorstCases| WorstCases {
        hourly: (b.hourly - a.hourly).max(0.0),
        daily: (b.daily - a.daily).max(0.0),
        weekly: (b.weekly - a.weekly).max(0.0),
    };
    [
        isr,
        delta(&isr, &dpc),
        dpc,
        delta(&dpc, &thr_hi),
        thr_hi,
        delta(&dpc, &thr_med),
        thr_med,
    ]
}

/// Row labels in the paper's order.
pub const TABLE3_SERVICES: [&str; 7] = [
    "H/W Int. to S/W ISR",
    "S/W ISR to DPC (+)",
    "H/W Interrupt to DPC",
    "DPC to kernel RT thread (High) (+)",
    "H/W Int. to kernel RT thread (High)",
    "DPC to kernel RT thread (Med.) (+)",
    "H/W Int. to kernel RT thread (Med.)",
];

/// The paper's Table 3 weekly values for the absolute rows, for the
/// EXPERIMENTS.md comparison: (service row index, per-workload values).
pub const PAPER_TABLE3_WEEKLY: [(usize, [f64; 4]); 4] = [
    (0, [1.6, 6.3, 12.2, 3.5]),   // int -> ISR
    (2, [2.0, 6.9, 14.0, 3.8]),   // int -> DPC
    (4, [33.0, 31.0, 84.0, 84.0]), // int -> thread (high)
    (6, [33.0, 31.0, 84.0, 84.0]), // int -> thread (med)
];

/// Builds Table 3 from the Windows 98 cells.
pub fn table3(cells: &AllCells) -> String {
    let per_cell: Vec<[WorstCases; 7]> = cells.win98.iter().map(table3_cells).collect();
    let rows: Vec<Table3Row> = TABLE3_SERVICES
        .iter()
        .enumerate()
        .map(|(i, &service)| Table3Row {
            service: service.to_string(),
            cells: per_cell.iter().map(|c| c[i]).collect(),
        })
        .collect();
    let names: Vec<&str> = cells.win98.iter().map(|m| m.workload.name()).collect();
    format!(
        "Table 3: Windows 98 Interrupt and Thread Latencies with no Sound\n\
         Scheme on a PC 99 Minimum System (simulated)\n\n{}",
        render_table3(&names, &rows)
    )
}

/// Companion table for NT 4.0 (not in the paper as a table, but implied by
/// Figure 4); included for the OS comparison.
pub fn table3_nt(cells: &AllCells) -> String {
    let per_cell: Vec<[WorstCases; 7]> = cells.nt.iter().map(table3_cells).collect();
    let rows: Vec<Table3Row> = TABLE3_SERVICES
        .iter()
        .enumerate()
        .map(|(i, &service)| Table3Row {
            service: service.to_string(),
            cells: per_cell.iter().map(|c| c[i]).collect(),
        })
        .collect();
    let names: Vec<&str> = cells.nt.iter().map(|m| m.workload.name()).collect();
    format!(
        "Companion: Windows NT 4.0 worst cases (same methodology)\n\n{}",
        render_table3(&names, &rows)
    )
}

/// Runs the Table 4 experiment: Business apps on Windows 98 with the
/// default sound scheme, cause tool armed.
pub fn table4(cfg: &RunConfig) -> String {
    let hours = cfg.duration.hours_for(WorkloadKind::Business);
    let seed = cell_seed(cfg.seed, OsKind::Win98, WorkloadKind::Business) ^ 0x7AB1E4;
    let mut opts = MeasureOptions {
        cause_threshold_ms: Some(6.0),
        ..MeasureOptions::default()
    };
    opts.scenario.sound_scheme = SoundScheme::Default;
    let m = measure_scenario(OsKind::Win98, WorkloadKind::Business, seed, hours, &opts);
    let mut out = String::from(
        "Table 4: Thread Latency Cause Tool Output, Windows 98 with Business\n\
         Apps and the Default Sound Scheme (episodes over 6 ms)\n\n",
    );
    if m.episodes.is_empty() {
        out.push_str("(no episodes captured in this run — increase duration)\n");
    }
    for e in m.episodes.iter().take(4) {
        out.push_str(e);
        out.push('\n');
    }
    out += &format!("episodes captured: {}\n", m.episodes.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{measure_all, Duration};

    fn quick_cfg() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(0.1),
            seed: 5,
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        }
    }

    #[test]
    fn table1_and_2_render() {
        assert!(table1().contains("ADSL"));
        let t2 = table2();
        assert!(t2.contains("FAT32"));
        assert!(t2.contains("Windows NT 4.0"));
    }

    #[test]
    fn table3_has_all_rows_and_workloads() {
        let cells = measure_all(&quick_cfg());
        let t = table3(&cells);
        for s in TABLE3_SERVICES {
            assert!(t.contains(s), "missing row {s}");
        }
        assert!(t.contains("3D Games"));
        let nt = table3_nt(&cells);
        assert!(nt.contains("NT 4.0"));
    }

    #[test]
    fn table4_captures_episodes_with_sound_scheme() {
        let cfg = RunConfig {
            duration: Duration::Minutes(1.0),
            seed: 11,
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
        batch_record: true,
        blame: None,
        flame_hz: None,
        };
        let t = table4(&cfg);
        assert!(t.contains("episodes captured"));
        // With the default sound scheme on 98, 6 ms episodes are common.
        assert!(
            t.contains("samples in"),
            "expected at least one episode trace:\n{t}"
        );
    }
}
