//! Deterministic scoped-thread fan-out for independent measurement runs.
//!
//! Every expensive harness in this crate is a list of *independent*
//! simulations: the 8 OS x workload cells, the stability seed grid, the
//! figure-5 scanner on/off pair. Each run derives its seed from the job
//! alone (see [`crate::cells::cell_seed`]), so running them on N worker
//! threads and collecting results by job index produces output that is
//! byte-identical to the serial order at any thread count.

use std::sync::{
    atomic::{AtomicUsize, Ordering},
    Mutex,
};

/// Resolves a requested worker count against a job count.
///
/// `requested == 0` means auto (`std::thread::available_parallelism`);
/// the result is clamped to `[1, jobs]` so short grids never spawn idle
/// workers.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let n = if requested == 0 { host_cores() } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Cores the host exposes (`std::thread::available_parallelism`), 1 when
/// unknown. Recorded in the timing artifact as `host_cores` so a speedup
/// below 1 on a single-core container reads as expected, not as a bug.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job(0..n)` on `threads` scoped workers and returns the results in
/// job-index order.
///
/// Workers claim job indices from a shared atomic counter and write each
/// result into its own slot, so scheduling order cannot reorder or drop
/// results — the only nondeterminism parallelism introduces is which
/// worker runs which job, and that is invisible in the output. A panic in
/// any job propagates when the scope joins.
pub fn parallel_map<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    let job = &job;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The simulation runs outside the lock; only the slot
                // store is serialized (one lock per job, not per event).
                let r = job(i);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_job_order_at_any_thread_count() {
        let serial = parallel_map(17, 1, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(parallel_map(17, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn handles_empty_and_single_job_grids() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_threads_clamps_to_jobs() {
        assert_eq!(effective_threads(16, 8), 8);
        assert_eq!(effective_threads(3, 8), 3);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(parallel_map(2, 64, |i| i), vec![0, 1]);
    }
}
