//! Deterministic scoped-thread fan-out for independent measurement runs.
//!
//! Every expensive harness in this crate is a list of *independent*
//! simulations: the 8 OS x workload cells, the stability seed grid, the
//! figure-5 scanner on/off pair. Each run derives its seed from the job
//! alone (see [`crate::cells::cell_seed`]), so running them on N worker
//! threads and collecting results by job index produces output that is
//! byte-identical to the serial order at any thread count.

use std::sync::{
    atomic::{AtomicUsize, Ordering},
    Mutex,
};

/// Resolves a requested worker count against a job count.
///
/// `requested == 0` means auto (`std::thread::available_parallelism`);
/// the result is clamped to `[1, jobs]` so short grids never spawn idle
/// workers.
pub fn effective_threads(requested: usize, jobs: usize) -> usize {
    let n = if requested == 0 { host_cores() } else { requested };
    n.clamp(1, jobs.max(1))
}

/// Cores the host exposes (`std::thread::available_parallelism`), 1 when
/// unknown. Recorded in the timing artifact as `host_cores` so a speedup
/// below 1 on a single-core container reads as expected, not as a bug.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `job(0..n)` on `threads` scoped workers and returns the results in
/// job-index order.
///
/// Workers claim job indices from a shared atomic counter and write each
/// result into its own slot, so scheduling order cannot reorder or drop
/// results — the only nondeterminism parallelism introduces is which
/// worker runs which job, and that is invisible in the output. A panic in
/// any job propagates when the scope joins.
pub fn parallel_map<T, F>(n: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    let job = &job;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The simulation runs outside the lock; only the slot
                // store is serialized (one lock per job, not per event).
                let r = job(i);
                slots.lock().unwrap()[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("every job index claimed exactly once"))
        .collect()
}

/// Runs `job(0..n)` on `threads` scoped workers and returns `(job index,
/// result)` pairs in **completion order** — the order the workers
/// finished, which varies run to run at `threads > 1`.
///
/// Only consumers whose folds are order-independent may use this: under
/// the v2 exact accumulators (DESIGN.md §14) every shard merge commutes,
/// so the assembled cell is bit-identical no matter which shard finished
/// first, and the assembler never has to hold a completed result back
/// waiting for a lower index. Positional payloads (episodes, trace
/// events, per-shard walls) must be slotted by the returned index, not
/// appended. Serial execution (threads == 1 or n <= 1) completes in index
/// order.
pub fn parallel_map_completion<T, F>(n: usize, threads: usize, job: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "need at least one worker");
    if threads == 1 || n <= 1 {
        return (0..n).map(|i| (i, job(i))).collect();
    }
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let next = AtomicUsize::new(0);
    let job = &job;
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // The simulation runs outside the lock; only the
                // completion push is serialized.
                let r = job(i);
                done.lock().unwrap().push((i, r));
            });
        }
    });
    done.into_inner().unwrap()
}

/// Runs `run()` `repeats` times and keeps the attempt with the smallest
/// `key` (e.g. total wall-clock). Timing comparisons built on one attempt
/// per side are noise-biased — the loser of a single race may just have
/// eaten a page fault — so the timing harness reports best-of-N for both
/// the serial and the parallel side. `repeats` is clamped to at least 1.
pub fn best_of<T, F, K>(repeats: usize, run: F, key: K) -> T
where
    F: Fn() -> T,
    K: Fn(&T) -> f64,
{
    let mut best = run();
    for _ in 1..repeats.max(1) {
        let next = run();
        if key(&next) < key(&best) {
            best = next;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_keeps_the_smallest_key() {
        let calls = std::cell::Cell::new(0.0f64);
        let picked = best_of(
            4,
            || {
                // Descending keys: 8, 6, 4, 2 — the last attempt wins.
                calls.set(calls.get() + 2.0);
                10.0 - calls.get()
            },
            |&v| v,
        );
        assert_eq!(picked, 2.0);
        assert_eq!(best_of(0, || 7, |_| 0.0), 7);
    }

    #[test]
    fn results_arrive_in_job_order_at_any_thread_count() {
        let serial = parallel_map(17, 1, |i| i * i);
        for threads in [2, 3, 8] {
            assert_eq!(parallel_map(17, threads, |i| i * i), serial);
        }
    }

    #[test]
    fn completion_order_yields_every_job_exactly_once() {
        for threads in [1, 2, 3, 8] {
            let got = parallel_map_completion(17, threads, |i| i * i);
            assert_eq!(got.len(), 17);
            let mut by_index: Vec<Option<usize>> = vec![None; 17];
            for (i, v) in got {
                assert!(by_index[i].replace(v).is_none(), "job {i} duplicated");
            }
            for (i, v) in by_index.into_iter().enumerate() {
                assert_eq!(v, Some(i * i));
            }
        }
        assert_eq!(
            parallel_map_completion(0, 4, |i| i),
            Vec::<(usize, usize)>::new()
        );
    }

    #[test]
    fn handles_empty_and_single_job_grids() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn effective_threads_clamps_to_jobs() {
        assert_eq!(effective_threads(16, 8), 8);
        assert_eq!(effective_threads(3, 8), 3);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(parallel_map(2, 64, |i| i), vec![0, 1]);
    }
}
