//! Harness self-instrumentation: wall-clock spans for the combined trace.
//!
//! `repro trace` wants shard imbalance and merge cost visible next to the
//! simulated cells, so the harness records its own phases — grid fan-out,
//! per-shard measurement, merge, render — as Chrome trace-event spans
//! under pid [`HARNESS_PID`]. Timestamps are host wall-clock microseconds
//! from the first [`enable`] call (the simulated cells use simulated time;
//! Perfetto shows them as separate processes, which is the point: the
//! harness rows explain where the *host* time went).
//!
//! Recording is off by default and [`span`] is a no-op returning an inert
//! guard, so the ordinary (untraced) harness pays one atomic load per
//! phase and allocates nothing.

use std::sync::{
    atomic::{AtomicBool, AtomicU64, Ordering},
    Mutex, OnceLock,
};
use std::time::Instant;

use wdm_sim::flight::{json_f64, json_str};

/// The trace-event process id the harness's own spans live under (cells
/// take pid 2+, see [`crate::cells::cell_pid`]).
pub const HARNESS_PID: u64 = 1;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread trace track, assigned on first span from that thread. A
    /// thread_name metadata record rides along so worker rows are labeled.
    static TID: u64 = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("worker-{tid}"));
        push_event(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{HARNESS_PID},\"tid\":{tid},\
             \"args\":{{\"name\":{}}}}}",
            json_str(&name)
        ));
        tid
    };
}

fn push_event(e: String) {
    EVENTS.lock().expect("span sink poisoned").push(e);
}

fn now_us() -> f64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_secs_f64() * 1e6)
        .unwrap_or(0.0)
}

/// Turns span recording on (idempotent). The first call pins the epoch all
/// timestamps are relative to.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// True if spans are being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An in-flight harness phase; the span is emitted when dropped.
#[must_use = "the span measures until this guard drops"]
pub struct Span {
    name: Option<String>,
    t0: f64,
}

/// Opens a span named `name` on the calling thread's track. Inert (no
/// allocation, no lock) unless [`enable`] was called.
pub fn span(name: &str) -> Span {
    if !enabled() {
        return Span { name: None, t0: 0.0 };
    }
    Span {
        name: Some(name.to_string()),
        t0: now_us(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        if !enabled() {
            return;
        }
        let dur = now_us() - self.t0;
        let tid = TID.with(|t| *t);
        push_event(format!(
            "{{\"ph\":\"X\",\"name\":{},\"cat\":\"harness\",\"pid\":{HARNESS_PID},\
             \"tid\":{tid},\"ts\":{},\"dur\":{}}}",
            json_str(&name),
            json_f64(self.t0),
            json_f64(dur),
        ));
    }
}

/// Takes every recorded span (plus a `process_name` metadata record) out
/// of the sink, leaving it empty for a subsequent run.
pub fn drain() -> Vec<String> {
    let mut out = vec![format!(
        "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{HARNESS_PID},\"tid\":0,\
         \"args\":{{\"name\":\"repro harness\"}}}}"
    )];
    out.append(&mut EVENTS.lock().expect("span sink poisoned"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_span_records_and_drains() {
        // Other lib tests share the global sink (and may run measure_all
        // concurrently), so assert presence rather than exact counts.
        enable();
        {
            let _s = span("phase \"x\"");
        }
        let events = drain();
        assert!(events[0].contains("process_name"));
        let recorded = events.iter().any(|e| e.contains("phase \\\"x\\\""));
        assert!(recorded, "span must be recorded once enabled: {events:?}");
        assert!(events.iter().any(|e| e.contains("thread_name")));
        assert!(
            events
                .iter()
                .skip(1)
                .all(|e| e.contains(&format!("\"pid\":{HARNESS_PID}"))),
            "harness events all live under the harness pid"
        );
    }
}
