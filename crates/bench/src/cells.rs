//! Measurement-cell management: one cell = one OS x workload run.
//!
//! The expensive part of every figure/table is collecting the latency
//! distributions; this module runs the 8 cells once (at quick or full
//! paper-equivalent durations) so the renderers can share them.

use wdm_latency::session::{measure_scenario, FlightOptions, MeasureOptions, ScenarioMeasurement};
use wdm_osmodel::{dist::SamplerMode, personality::OsKind};
use wdm_workloads::{UsageModel, WorkloadKind};

use crate::{progress, spans};

/// How long to simulate each cell.
#[derive(Debug, Clone, Copy)]
pub enum Duration {
    /// A fixed number of simulated minutes per cell (quick mode).
    Minutes(f64),
    /// The paper's full collection time per workload (§3.1): 4 h Business,
    /// 6 h Workstation, 12.5 h Games, 8 h Web.
    FullCollection,
}

impl Duration {
    /// Simulated hours for a workload under this policy.
    pub fn hours_for(&self, w: WorkloadKind) -> f64 {
        match self {
            Duration::Minutes(m) => m / 60.0,
            Duration::FullCollection => UsageModel::of(w).collect_hours_per_week(),
        }
    }

    /// Simulated minutes for a workload (the shard planner's unit: block
    /// maxima use one-minute blocks, so shard boundaries fall on minutes).
    pub fn minutes_for(&self, w: WorkloadKind) -> f64 {
        match self {
            Duration::Minutes(m) => *m,
            Duration::FullCollection => UsageModel::of(w).collect_hours_per_week() * 60.0,
        }
    }
}

/// Run configuration shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Per-cell duration policy.
    pub duration: Duration,
    /// Base RNG seed; each cell perturbs it deterministically.
    pub seed: u64,
    /// Worker threads for independent simulation runs; 0 = one per
    /// available core. Any value produces byte-identical output — each run
    /// seeds from the job alone and results are collected in job order.
    pub threads: usize,
    /// Time shards per cell (>= 1). Each cell's collection window splits
    /// into up to this many independent whole-minute simulations, fanned
    /// out alongside the cells themselves and merged exactly (DESIGN.md
    /// §9). `1` is the classic single-simulation path, bit-identical to
    /// the pre-shard harness; a given `shards` value is bit-identical at
    /// every thread count.
    pub shards: usize,
    /// Attach a flight recorder to every cell and keep its Chrome trace
    /// events in the measurements. Read-only instrumentation: every
    /// measured value and `summary_digest` stay bit-identical with this on
    /// or off (CI asserts it).
    pub trace: bool,
    /// Compile fixed-shape programs into flat instruction streams (the
    /// default). `repro --no-compile` clears it to run every cell on the
    /// interpreted reference path; outputs are byte-identical either way
    /// (CI's compile-smoke job asserts it against the committed digests).
    pub compile: bool,
    /// How distribution draws are lowered (`repro --sampler-mode`).
    /// `Exact` (default) is bit-identical to the interpreted samplers;
    /// `Table` swaps heavy-tail draws for quantile-table inverse-CDF
    /// lookups and is pinned by its own digest baseline
    /// (`artifacts/CELL_digests_table.txt`). See DESIGN.md §12.
    pub sampler_mode: SamplerMode,
    /// Stage raw samples and fold them in batches (the default).
    /// `repro --no-batch-record` clears it to run the per-sample reference
    /// recording path; outputs are byte-identical either way (CI's
    /// batch-smoke job asserts it against the committed digests). See
    /// DESIGN.md §13.
    pub batch_record: bool,
    /// Arm tail-episode forensics on every cell (`repro blame`): blame
    /// decomposition plus a bounded episode store of flight-ring captures
    /// (DESIGN.md §15). Digest-neutral: the episode payloads ride their
    /// own fields and `summary_digest` never reads them (CI's blame-smoke
    /// job asserts the digests stay bit-identical with this armed).
    pub blame: Option<wdm_latency::BlameOptions>,
    /// Arm the virtual-time flame sampler at this rate in samples per
    /// simulated second (`repro flame`). Digest-neutral like `blame`.
    pub flame_hz: Option<f64>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(2.0),
            seed: 1999, // OSDI '99.
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        }
    }
}

impl RunConfig {
    /// The measurement-tool options for one cell under this config —
    /// defaults plus a flight recorder (pid'd per cell) when tracing.
    pub fn measure_opts(&self, os: OsKind, w: WorkloadKind) -> MeasureOptions {
        let mut opts = MeasureOptions {
            flight: self.trace.then(|| FlightOptions {
                pid: cell_pid(os, w),
                ..FlightOptions::default()
            }),
            blame: self.blame,
            flame_hz: self.flame_hz,
            ..MeasureOptions::default()
        };
        opts.scenario.compile = self.compile;
        opts.scenario.sampler_mode = self.sampler_mode;
        opts.batch_record = self.batch_record;
        opts
    }
}

/// Stable Chrome trace-event process id for a cell. Pid 1 is the harness
/// itself ([`crate::spans`]); cells follow in grid order so the combined
/// trace groups one process per cell.
pub fn cell_pid(os: OsKind, w: WorkloadKind) -> u64 {
    let os_ix = match os {
        OsKind::Nt4 => 0,
        OsKind::Win98 => 1,
        OsKind::Win2000 => 2,
    };
    let w_ix = WorkloadKind::ALL.iter().position(|&x| x == w).unwrap() as u64;
    2 + os_ix * WorkloadKind::ALL.len() as u64 + w_ix
}

/// Deterministic per-cell seed.
pub fn cell_seed(base: u64, os: OsKind, w: WorkloadKind) -> u64 {
    let os_ix = match os {
        OsKind::Nt4 => 1,
        OsKind::Win98 => 2,
        OsKind::Win2000 => 3,
    };
    let w_ix = WorkloadKind::ALL.iter().position(|&x| x == w).unwrap() as u64;
    base.wrapping_mul(1_000_003) ^ (os_ix * 97) ^ (w_ix * 1009)
}

/// Deterministic per-shard seed: an splitmix64-style finalizer over the
/// cell seed and shard index. Used only when a cell actually splits
/// (`shards > 1`), so every shard's RNG stream is independent of the other
/// shards *and* of the unsharded cell stream (shard 0 is not the prefix of
/// a `--shards 1` run; the two are statistically, not bitwise, comparable).
pub fn shard_seed(cell_seed: u64, shard_ix: usize) -> u64 {
    let mut z = cell_seed ^ (shard_ix as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Splits `minutes` of collection into at most `shards` pieces whose
/// boundaries all fall on whole minutes (the block-maxima granularity, so
/// per-shard blocks concatenate exactly). Whole minutes distribute as
/// evenly as possible, earlier shards taking the remainder; a fractional
/// tail rides on the last shard. Windows shorter than two whole minutes
/// cannot split and return a single shard.
pub fn shard_plan(minutes: f64, shards: usize) -> Vec<f64> {
    let whole = (minutes + 1e-9).floor() as usize;
    let k = shards.max(1).min(whole.max(1));
    if k <= 1 {
        return vec![minutes];
    }
    let (q, r) = (whole / k, whole % k);
    let mut plan: Vec<f64> = (0..k).map(|i| (q + usize::from(i < r)) as f64).collect();
    *plan.last_mut().expect("k >= 1") += (minutes - whole as f64).max(0.0);
    plan
}

/// One independent simulation job: a whole cell, or one time shard of it.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpec {
    /// RNG seed for this shard's simulation.
    pub seed: u64,
    /// Simulated hours this shard collects.
    pub hours: f64,
    /// Whole minutes to close the block-maxima windows at after the run
    /// (`None` on the classic single-shard path, which leaves the final
    /// in-progress block open exactly as the pre-shard harness did).
    pub close_minutes: Option<usize>,
}

/// The shard jobs for one cell under `cfg`, in time order. A single entry
/// (with the cell's own seed and no block closing) when the cell does not
/// split — that path is bit-identical to the pre-shard harness.
pub fn cell_shards(cfg: &RunConfig, os: OsKind, w: WorkloadKind) -> Vec<ShardSpec> {
    let base = cell_seed(cfg.seed, os, w);
    let plan = shard_plan(cfg.duration.minutes_for(w), cfg.shards);
    if plan.len() <= 1 {
        return vec![ShardSpec {
            seed: base,
            hours: cfg.duration.hours_for(w),
            close_minutes: None,
        }];
    }
    plan.iter()
        .enumerate()
        .map(|(i, &m)| ShardSpec {
            seed: shard_seed(base, i),
            hours: m / 60.0,
            close_minutes: Some((m + 1e-9).floor() as usize),
        })
        .collect()
}

/// Runs one shard job with the given tool options.
pub fn measure_shard(
    spec: &ShardSpec,
    os: OsKind,
    w: WorkloadKind,
    opts: &MeasureOptions,
) -> ScenarioMeasurement {
    let mut m = measure_scenario(os, w, spec.seed, spec.hours, opts);
    if let Some(minutes) = spec.close_minutes {
        m.close_blocks(minutes);
    }
    m
}

/// Measures one cell under `cfg`'s tool options, honoring `cfg.shards`
/// (shards run serially here; [`measure_all_timed`] fans them out).
pub fn measure_cell(cfg: &RunConfig, os: OsKind, w: WorkloadKind) -> ScenarioMeasurement {
    let shards = cell_shards(cfg, os, w);
    let opts = cfg.measure_opts(os, w);
    let mut m = ScenarioMeasurement::merge_shards(
        shards.iter().map(|s| measure_shard(s, os, w, &opts)).collect(),
    );
    finish_blame(&mut m, cfg);
    m
}

/// Re-ranks a merged cell's per-shard episode retentions into the cell's
/// global top-K: stable sort by latency descending (ties keep shard/time
/// order, so the earlier episode wins exactly as in the per-shard store),
/// then truncate to the per-cell cap. Each shard already kept at most the
/// cap, so the concatenation holds every global top-K candidate.
pub fn finish_blame(m: &mut ScenarioMeasurement, cfg: &RunConfig) {
    if let Some(opts) = cfg.blame {
        let cap = match opts.trigger {
            wdm_latency::BlameTrigger::TopK(k) => k.min(opts.max_episodes),
            _ => opts.max_episodes,
        };
        m.blame_episodes.sort_by_key(|e| std::cmp::Reverse(e.0));
        m.blame_episodes.truncate(cap);
    }
}

/// All 8 cells (2 OSs x 4 workloads), NT first, paper workload order.
pub struct AllCells {
    /// NT 4.0 cells in workload order.
    pub nt: Vec<ScenarioMeasurement>,
    /// Windows 98 cells in workload order.
    pub win98: Vec<ScenarioMeasurement>,
}

/// Measures all 8 cells, fanned out over `cfg.threads` workers.
pub fn measure_all(cfg: &RunConfig) -> AllCells {
    measure_all_timed(cfg).cells
}

/// Wall-clock cost of one measured cell.
pub struct CellTiming {
    /// Which OS ran.
    pub os: OsKind,
    /// Which stress load ran.
    pub workload: WorkloadKind,
    /// Host wall-clock seconds the cell took (summed over its shards: the
    /// cell's total compute, not its critical path).
    pub wall_s: f64,
    /// Simulator decision-loop iterations the cell executed.
    pub sim_events: u64,
    /// Program steps the cell's kernel executed.
    pub steps_executed: u64,
    /// Entries into the kernel's inner step loops. The timing artifact
    /// reports `steps_executed / step_dispatches` per cell as
    /// `batch_steps_per_dispatch`.
    pub step_dispatches: u64,
    /// Steps executed through compiled instruction streams (a subset of
    /// `steps_executed`; 0 under `--no-compile`). The timing artifact
    /// reports `compiled_steps / step_dispatches` per cell as
    /// `compile_steps_per_dispatch`.
    pub compiled_steps: u64,
    /// Latency samples recorded across the cell's 11 measurement series.
    /// The timing artifact reports `samples_recorded / wall_s` per cell as
    /// `measure_events_per_sec` — the throughput of the cycle-domain
    /// measurement fast path (DESIGN.md §12).
    pub samples_recorded: u64,
    /// Staging-buffer flushes across the cell's collectors (summed exactly
    /// over shards via the `latency.batch_flushes` counter; 0 under
    /// `--no-batch-record`). The timing artifact reports this and
    /// `samples_recorded / batch_flushes` as `samples_per_flush`.
    pub batch_flushes: u64,
    /// Samples that went through the staging buffers (0 under
    /// `--no-batch-record`; equals the staged subset of
    /// `samples_recorded` otherwise). The timing artifact reports
    /// `staged_samples / wall_s` as `staged_samples_per_sec`.
    pub staged_samples: u64,
    /// Wall-clock seconds of each shard, time order (one entry on the
    /// unsharded path). The artifact reports these plus the max/mean
    /// imbalance so load-balance losses in the 8 x K fan-out are visible.
    pub shard_wall_s: Vec<f64>,
}

impl CellTiming {
    /// Shards this cell actually split into.
    pub fn shards(&self) -> usize {
        self.shard_wall_s.len()
    }

    /// Max shard wall over mean shard wall (1.0 = perfectly balanced; the
    /// scheduler can hide anything below `shards / busy_workers`).
    pub fn shard_imbalance(&self) -> f64 {
        shard_imbalance(&self.shard_wall_s)
    }
}

/// Max/mean ratio of a wall-clock list (1.0 for empty or single entries).
pub fn shard_imbalance(walls: &[f64]) -> f64 {
    if walls.len() <= 1 {
        return 1.0;
    }
    let max = walls.iter().cloned().fold(0.0, f64::max);
    let mean = walls.iter().sum::<f64>() / walls.len() as f64;
    max / mean.max(1e-12)
}

/// The 8 cells plus harness timing metadata (the `timing` artifact).
pub struct TimedCells {
    /// The measurements, paper order.
    pub cells: AllCells,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole grid.
    pub total_wall_s: f64,
    /// Per-cell timings, NT first, paper workload order.
    pub timings: Vec<CellTiming>,
}

/// Per-cell assembly state for the completion-order merge: commutative
/// state accumulates as shards arrive; positional payloads slot by shard
/// index so the assembled cell is byte-identical at any arrival order.
struct CellAssembly {
    /// Merged closed shards (everything but the final shard).
    acc: Option<ScenarioMeasurement>,
    /// The final shard — the only one whose block window may end
    /// mid-minute, adopted last via the sequential [`ScenarioMeasurement::merge_shard`].
    tail: Option<ScenarioMeasurement>,
    /// Episode renderings per shard index.
    episodes: Vec<Option<Vec<String>>>,
    /// Chrome trace events per shard index.
    traces: Vec<Option<Vec<String>>>,
    /// Blame-episode payloads per shard index (DESIGN.md §15).
    blame: Vec<Option<Vec<wdm_latency::session::BlameEpisodePayload>>>,
    /// Wall-clock per shard index.
    walls: Vec<f64>,
    /// Absolute whole-minute offset of each shard in the cell window
    /// (prefix sums of the closed shards' minutes).
    offsets: Vec<usize>,
    /// Simulated hours per shard, for the index-order f64 re-fold that
    /// keeps `collected_hours` bit-identical to the sequential merge.
    hours: Vec<f64>,
}

/// Measures all 8 cells and records per-cell wall-clock cost.
///
/// Every cell expands into its shard jobs first, so the worker pool sees the
/// flat 8 x K job list (shards are independent simulations just like cells —
/// each seeds from its [`ShardSpec`] alone). Shard results are consumed in
/// **completion order** — every merge commutes under the exact cycle-domain
/// accumulators (DESIGN.md §14), positional payloads are slotted by shard
/// index, and the output is byte-identical to the sequential merge at any
/// thread count and arrival order.
pub fn measure_all_timed(cfg: &RunConfig) -> TimedCells {
    let cells: Vec<(OsKind, WorkloadKind)> = [OsKind::Nt4, OsKind::Win98]
        .into_iter()
        .flat_map(|os| WorkloadKind::ALL.into_iter().map(move |w| (os, w)))
        .collect();
    // (cell index, shard index, shards in that cell, spec).
    let jobs: Vec<(usize, usize, usize, ShardSpec)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, &(os, w))| {
            let shards = cell_shards(cfg, os, w);
            let k = shards.len();
            shards
                .into_iter()
                .enumerate()
                .map(move |(si, s)| (ci, si, k, s))
        })
        .collect();
    let threads = crate::parallel::effective_threads(cfg.threads, jobs.len());
    let t0 = std::time::Instant::now();
    let _grid = spans::span("measure grid");
    let arrivals = crate::parallel::parallel_map_completion(jobs.len(), threads, |i| {
        let (ci, si, k, spec) = jobs[i];
        let (os, w) = cells[ci];
        let scope = format!("cell {:?}/{:?} shard {}/{}", os, w, si + 1, k);
        progress::detail(&scope, "measuring");
        let _span = spans::span(&scope);
        let t = std::time::Instant::now();
        let m = measure_shard(&spec, os, w, &cfg.measure_opts(os, w));
        let wall_s = t.elapsed().as_secs_f64();
        progress::detail(&scope, &format!("done in {wall_s:.2}s"));
        (m, wall_s)
    });
    let total_wall_s = t0.elapsed().as_secs_f64();
    drop(_grid);

    let _merge = spans::span("merge shards");

    // Prepare per-cell assembly slots from the (deterministic) job list.
    let mut asm: Vec<CellAssembly> = cells
        .iter()
        .map(|_| CellAssembly {
            acc: None,
            tail: None,
            episodes: Vec::new(),
            traces: Vec::new(),
            blame: Vec::new(),
            walls: Vec::new(),
            offsets: Vec::new(),
            hours: Vec::new(),
        })
        .collect();
    let mut cum_minutes = vec![0usize; cells.len()];
    for &(ci, si, _, spec) in &jobs {
        let a = &mut asm[ci];
        debug_assert_eq!(a.hours.len(), si, "jobs list cell-shards in order");
        a.episodes.push(None);
        a.traces.push(None);
        a.blame.push(None);
        a.walls.push(0.0);
        a.hours.push(spec.hours);
        a.offsets.push(cum_minutes[ci]);
        // Single-shard cells have no closing boundary; the offset stays 0
        // and the legacy whole-cell path below is untouched.
        cum_minutes[ci] += spec.close_minutes.unwrap_or(0);
    }

    for (ji, (mut m, wall_s)) in arrivals {
        let (ci, si, k, _) = jobs[ji];
        let a = &mut asm[ci];
        a.walls[si] = wall_s;
        a.episodes[si] = Some(std::mem::take(&mut m.episodes));
        a.traces[si] = Some(std::mem::take(&mut m.trace_events));
        a.blame[si] = Some(std::mem::take(&mut m.blame_episodes));
        if si == k - 1 {
            // The final shard may end mid-minute (open hot block); it is
            // adopted by the sequential merge once every closed shard is in.
            a.tail = Some(m);
        } else {
            let off = a.offsets[si];
            match a.acc.as_mut() {
                None => {
                    m.shift_blocks(off);
                    a.acc = Some(m);
                }
                Some(acc) => {
                    // Episodes/traces were already taken; the returned
                    // positional payloads are empty by construction.
                    let _ = acc.merge_shard_at(off, m);
                }
            }
        }
    }

    let mut timings = Vec::with_capacity(cells.len());
    let mut nt = Vec::new();
    let mut win98 = Vec::new();
    for (&(os, workload), a) in cells.iter().zip(asm) {
        let tail = a.tail.expect("every cell has a final shard");
        let mut m = match a.acc {
            Some(mut acc) => {
                acc.merge_shard(tail);
                acc
            }
            None => tail,
        };
        // Positional payloads reassemble in shard-index order, and the
        // f64 hours re-fold in index order so the bits match the
        // sequential merge exactly (the digest pins them).
        m.episodes = a
            .episodes
            .into_iter()
            .flat_map(|e| e.expect("every shard arrived"))
            .collect();
        m.trace_events = a
            .traces
            .into_iter()
            .flat_map(|t| t.expect("every shard arrived"))
            .collect();
        m.blame_episodes = a
            .blame
            .into_iter()
            .flat_map(|b| b.expect("every shard arrived"))
            .collect();
        finish_blame(&mut m, cfg);
        let mut hours = a.hours[0];
        for &h in &a.hours[1..] {
            hours += h;
        }
        m.collected_hours = hours;
        let shard_wall_s = a.walls;
        timings.push(CellTiming {
            os,
            workload,
            wall_s: shard_wall_s.iter().sum(),
            sim_events: m.sim_events,
            steps_executed: m.steps_executed,
            step_dispatches: m.step_dispatches,
            // Shards sum this counter exactly in the metrics merge, so the
            // registry is the authoritative per-cell total.
            compiled_steps: m.metrics.counter_value("sim.compiled_steps").unwrap_or(0),
            samples_recorded: m.samples_recorded(),
            batch_flushes: m.metrics.counter_value("latency.batch_flushes").unwrap_or(0),
            staged_samples: m.metrics.counter_value("latency.staged_samples").unwrap_or(0),
            shard_wall_s,
        });
        match os {
            OsKind::Nt4 => nt.push(m),
            _ => win98.push(m),
        }
    }
    TimedCells {
        cells: AllCells { nt, win98 },
        threads,
        total_wall_s,
        timings,
    }
}

/// A complete, exact textual digest of a measurement's summary statistics:
/// per-series sample counts, bin counts and extreme values (as exact f64
/// bits), plus the run's counters. Two runs are observably identical for
/// every renderer in this crate iff their digests match — the determinism
/// test and the `timing` artifact compare these across thread counts.
pub fn summary_digest(m: &ScenarioMeasurement) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{:?}/{:?} hours={}", m.os, m.workload, m.collected_hours.to_bits());
    let mut series = |name: &str, s: &wdm_latency::worstcase::LatencySeries| {
        let _ = write!(
            out,
            " {name}:count={},max={},min={},mean={},bins={:?}",
            s.hist.count(),
            s.hist.max_ms().to_bits(),
            s.hist.min_ms().to_bits(),
            s.hist.mean_ms().to_bits(),
            s.hist.counts()
        );
    };
    series("int_to_isr", &m.int_to_isr);
    series("int_to_isr_all", &m.int_to_isr_all_ticks);
    series("isr_to_dpc", &m.isr_to_dpc);
    series("int_to_dpc", &m.int_to_dpc);
    series("dpc_lat", &m.dpc_lat);
    series("thr_lat_28", &m.thread_lat_28);
    series("thr_int_28", &m.thread_int_28);
    series("thr_lat_24", &m.thread_lat_24);
    series("thr_int_24", &m.thread_int_24);
    series("tool_d2t_28", &m.tool_dpc_to_thread_28);
    series("tool_est_i2d", &m.tool_est_int_to_dpc);
    let _ = write!(
        out,
        " ops={} waits24={} waits28={} sim_events={} episodes={}",
        m.ops_completed,
        m.waits_24,
        m.waits_28,
        m.sim_events,
        m.episodes.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_collection_hours_match_paper() {
        let d = Duration::FullCollection;
        assert!((d.hours_for(WorkloadKind::Business) - 4.0).abs() < 1e-9);
        assert!((d.hours_for(WorkloadKind::Games) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn cell_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for os in OsKind::ALL {
            for w in WorkloadKind::ALL {
                assert!(seen.insert(cell_seed(7, os, w)));
            }
        }
    }

    #[test]
    fn quick_cell_measures() {
        let cfg = RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 3,
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        };
        let m = measure_cell(&cfg, OsKind::Nt4, WorkloadKind::Web);
        // Every-tick series sees ~3k samples in 3 s; the per-round series
        // is bounded by tool cadence.
        assert!(m.int_to_isr_all_ticks.hist.count() > 1000);
        assert!(m.int_to_isr.hist.count() > 200);
    }

    #[test]
    fn shard_plan_covers_the_window_on_whole_minute_boundaries() {
        for &(minutes, shards) in
            &[(4.0, 4), (5.0, 2), (7.3, 3), (12.5 * 60.0, 8), (1.0, 4), (0.2, 4)]
        {
            let plan = shard_plan(minutes, shards);
            assert!(plan.len() <= shards.max(1));
            let total: f64 = plan.iter().sum();
            assert!((total - minutes).abs() < 1e-6, "plan {plan:?} loses time");
            // Every boundary between shards falls on a whole minute.
            let mut edge = 0.0;
            for &m in &plan[..plan.len() - 1] {
                edge += m;
                assert!((edge - edge.round()).abs() < 1e-6, "edge {edge} not whole");
                assert!(m >= 1.0 - 1e-9, "empty shard in {plan:?}");
            }
        }
    }

    #[test]
    fn sub_minute_windows_never_split() {
        assert_eq!(shard_plan(0.2, 16), vec![0.2]);
        assert_eq!(shard_plan(1.0, 3), vec![1.0]);
    }

    #[test]
    fn shard_seeds_are_distinct_from_each_other_and_the_cell_seed() {
        let base = cell_seed(1999, OsKind::Nt4, WorkloadKind::Business);
        let mut seen = std::collections::HashSet::from([base]);
        for i in 0..64 {
            assert!(seen.insert(shard_seed(base, i)));
        }
    }

    #[test]
    fn single_shard_spec_is_the_legacy_path() {
        let cfg = RunConfig {
            duration: Duration::Minutes(0.2),
            seed: 1999,
            threads: 1,
            shards: 8,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        };
        // Sub-minute window: exactly one shard with the cell's own seed and
        // no block closing, i.e. the pre-shard harness.
        let specs = cell_shards(&cfg, OsKind::Win98, WorkloadKind::Games);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].seed, cell_seed(1999, OsKind::Win98, WorkloadKind::Games));
        assert_eq!(specs[0].close_minutes, None);
    }

    #[test]
    fn sharded_cell_measures_and_totals_the_window() {
        let cfg = RunConfig {
            duration: Duration::Minutes(2.0),
            seed: 5,
            threads: 1,
            shards: 2,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        };
        let specs = cell_shards(&cfg, OsKind::Nt4, WorkloadKind::Business);
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].close_minutes, Some(1));
        let m = measure_cell(&cfg, OsKind::Nt4, WorkloadKind::Business);
        assert!((m.collected_hours - 2.0 / 60.0).abs() < 1e-9);
        // Two closed one-minute shards concatenate to two completed blocks.
        assert_eq!(m.int_to_isr_all_ticks.blocks.maxima().len(), 2);
        assert!(m.int_to_isr_all_ticks.hist.count() > 1000);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(shard_imbalance(&[]), 1.0);
        assert_eq!(shard_imbalance(&[3.0]), 1.0);
        assert!((shard_imbalance(&[1.0, 3.0]) - 1.5).abs() < 1e-12);
    }
}
