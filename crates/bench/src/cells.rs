//! Measurement-cell management: one cell = one OS x workload run.
//!
//! The expensive part of every figure/table is collecting the latency
//! distributions; this module runs the 8 cells once (at quick or full
//! paper-equivalent durations) so the renderers can share them.

use wdm_latency::session::{measure_scenario, MeasureOptions, ScenarioMeasurement};
use wdm_osmodel::personality::OsKind;
use wdm_workloads::{UsageModel, WorkloadKind};

/// How long to simulate each cell.
#[derive(Debug, Clone, Copy)]
pub enum Duration {
    /// A fixed number of simulated minutes per cell (quick mode).
    Minutes(f64),
    /// The paper's full collection time per workload (§3.1): 4 h Business,
    /// 6 h Workstation, 12.5 h Games, 8 h Web.
    FullCollection,
}

impl Duration {
    /// Simulated hours for a workload under this policy.
    pub fn hours_for(&self, w: WorkloadKind) -> f64 {
        match self {
            Duration::Minutes(m) => m / 60.0,
            Duration::FullCollection => UsageModel::of(w).collect_hours_per_week(),
        }
    }
}

/// Run configuration shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Per-cell duration policy.
    pub duration: Duration,
    /// Base RNG seed; each cell perturbs it deterministically.
    pub seed: u64,
    /// Worker threads for independent simulation runs; 0 = one per
    /// available core. Any value produces byte-identical output — each run
    /// seeds from the job alone and results are collected in job order.
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(2.0),
            seed: 1999, // OSDI '99.
            threads: 0,
        }
    }
}

/// Deterministic per-cell seed.
pub fn cell_seed(base: u64, os: OsKind, w: WorkloadKind) -> u64 {
    let os_ix = match os {
        OsKind::Nt4 => 1,
        OsKind::Win98 => 2,
        OsKind::Win2000 => 3,
    };
    let w_ix = WorkloadKind::ALL.iter().position(|&x| x == w).unwrap() as u64;
    base.wrapping_mul(1_000_003) ^ (os_ix * 97) ^ (w_ix * 1009)
}

/// Measures one cell with default tool options.
pub fn measure_cell(cfg: &RunConfig, os: OsKind, w: WorkloadKind) -> ScenarioMeasurement {
    measure_scenario(
        os,
        w,
        cell_seed(cfg.seed, os, w),
        cfg.duration.hours_for(w),
        &MeasureOptions::default(),
    )
}

/// All 8 cells (2 OSs x 4 workloads), NT first, paper workload order.
pub struct AllCells {
    /// NT 4.0 cells in workload order.
    pub nt: Vec<ScenarioMeasurement>,
    /// Windows 98 cells in workload order.
    pub win98: Vec<ScenarioMeasurement>,
}

/// Measures all 8 cells, fanned out over `cfg.threads` workers.
pub fn measure_all(cfg: &RunConfig) -> AllCells {
    measure_all_timed(cfg).cells
}

/// Wall-clock cost of one measured cell.
pub struct CellTiming {
    /// Which OS ran.
    pub os: OsKind,
    /// Which stress load ran.
    pub workload: WorkloadKind,
    /// Host wall-clock seconds the cell took.
    pub wall_s: f64,
    /// Simulator decision-loop iterations the cell executed.
    pub sim_events: u64,
    /// Program steps the cell's kernel executed.
    pub steps_executed: u64,
    /// Entries into the kernel's inner step loops. The timing artifact
    /// reports `steps_executed / step_dispatches` per cell as
    /// `batch_steps_per_dispatch`.
    pub step_dispatches: u64,
}

/// The 8 cells plus harness timing metadata (the `timing` artifact).
pub struct TimedCells {
    /// The measurements, paper order.
    pub cells: AllCells,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock seconds for the whole grid.
    pub total_wall_s: f64,
    /// Per-cell timings, NT first, paper workload order.
    pub timings: Vec<CellTiming>,
}

/// Measures all 8 cells and records per-cell wall-clock cost.
///
/// Cells are independent simulations (each seeds from
/// [`cell_seed`] alone), so they fan out over scoped worker threads; the
/// results are collected by job index, which keeps the output byte-identical
/// to a serial run at any thread count.
pub fn measure_all_timed(cfg: &RunConfig) -> TimedCells {
    let jobs: Vec<(OsKind, WorkloadKind)> = [OsKind::Nt4, OsKind::Win98]
        .into_iter()
        .flat_map(|os| WorkloadKind::ALL.into_iter().map(move |w| (os, w)))
        .collect();
    let threads = crate::parallel::effective_threads(cfg.threads, jobs.len());
    let t0 = std::time::Instant::now();
    let results = crate::parallel::parallel_map(jobs.len(), threads, |i| {
        let (os, w) = jobs[i];
        let t = std::time::Instant::now();
        let m = measure_cell(cfg, os, w);
        (m, t.elapsed().as_secs_f64())
    });
    let total_wall_s = t0.elapsed().as_secs_f64();
    let mut timings = Vec::with_capacity(jobs.len());
    let mut nt = Vec::new();
    let mut win98 = Vec::new();
    for (&(os, workload), (m, wall_s)) in jobs.iter().zip(results) {
        timings.push(CellTiming {
            os,
            workload,
            wall_s,
            sim_events: m.sim_events,
            steps_executed: m.steps_executed,
            step_dispatches: m.step_dispatches,
        });
        match os {
            OsKind::Nt4 => nt.push(m),
            _ => win98.push(m),
        }
    }
    TimedCells {
        cells: AllCells { nt, win98 },
        threads,
        total_wall_s,
        timings,
    }
}

/// A complete, exact textual digest of a measurement's summary statistics:
/// per-series sample counts, bin counts and extreme values (as exact f64
/// bits), plus the run's counters. Two runs are observably identical for
/// every renderer in this crate iff their digests match — the determinism
/// test and the `timing` artifact compare these across thread counts.
pub fn summary_digest(m: &ScenarioMeasurement) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "{:?}/{:?} hours={}", m.os, m.workload, m.collected_hours.to_bits());
    let mut series = |name: &str, s: &wdm_latency::worstcase::LatencySeries| {
        let _ = write!(
            out,
            " {name}:count={},max={},min={},mean={},bins={:?}",
            s.hist.count(),
            s.hist.max_ms().to_bits(),
            s.hist.min_ms().to_bits(),
            s.hist.mean_ms().to_bits(),
            s.hist.counts()
        );
    };
    series("int_to_isr", &m.int_to_isr);
    series("int_to_isr_all", &m.int_to_isr_all_ticks);
    series("isr_to_dpc", &m.isr_to_dpc);
    series("int_to_dpc", &m.int_to_dpc);
    series("dpc_lat", &m.dpc_lat);
    series("thr_lat_28", &m.thread_lat_28);
    series("thr_int_28", &m.thread_int_28);
    series("thr_lat_24", &m.thread_lat_24);
    series("thr_int_24", &m.thread_int_24);
    series("tool_d2t_28", &m.tool_dpc_to_thread_28);
    series("tool_est_i2d", &m.tool_est_int_to_dpc);
    let _ = write!(
        out,
        " ops={} waits24={} waits28={} sim_events={} episodes={}",
        m.ops_completed,
        m.waits_24,
        m.waits_28,
        m.sim_events,
        m.episodes.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_collection_hours_match_paper() {
        let d = Duration::FullCollection;
        assert!((d.hours_for(WorkloadKind::Business) - 4.0).abs() < 1e-9);
        assert!((d.hours_for(WorkloadKind::Games) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn cell_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for os in OsKind::ALL {
            for w in WorkloadKind::ALL {
                assert!(seen.insert(cell_seed(7, os, w)));
            }
        }
    }

    #[test]
    fn quick_cell_measures() {
        let cfg = RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 3,
            threads: 0,
        };
        let m = measure_cell(&cfg, OsKind::Nt4, WorkloadKind::Web);
        // Every-tick series sees ~3k samples in 3 s; the per-round series
        // is bounded by tool cadence.
        assert!(m.int_to_isr_all_ticks.hist.count() > 1000);
        assert!(m.int_to_isr.hist.count() > 200);
    }
}
