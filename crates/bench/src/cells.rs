//! Measurement-cell management: one cell = one OS x workload run.
//!
//! The expensive part of every figure/table is collecting the latency
//! distributions; this module runs the 8 cells once (at quick or full
//! paper-equivalent durations) so the renderers can share them.

use wdm_latency::session::{measure_scenario, MeasureOptions, ScenarioMeasurement};
use wdm_osmodel::personality::OsKind;
use wdm_workloads::{UsageModel, WorkloadKind};

/// How long to simulate each cell.
#[derive(Debug, Clone, Copy)]
pub enum Duration {
    /// A fixed number of simulated minutes per cell (quick mode).
    Minutes(f64),
    /// The paper's full collection time per workload (§3.1): 4 h Business,
    /// 6 h Workstation, 12.5 h Games, 8 h Web.
    FullCollection,
}

impl Duration {
    /// Simulated hours for a workload under this policy.
    pub fn hours_for(&self, w: WorkloadKind) -> f64 {
        match self {
            Duration::Minutes(m) => m / 60.0,
            Duration::FullCollection => UsageModel::of(w).collect_hours_per_week(),
        }
    }
}

/// Run configuration shared by all harnesses.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Per-cell duration policy.
    pub duration: Duration,
    /// Base RNG seed; each cell perturbs it deterministically.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(2.0),
            seed: 1999, // OSDI '99.
        }
    }
}

/// Deterministic per-cell seed.
pub fn cell_seed(base: u64, os: OsKind, w: WorkloadKind) -> u64 {
    let os_ix = match os {
        OsKind::Nt4 => 1,
        OsKind::Win98 => 2,
        OsKind::Win2000 => 3,
    };
    let w_ix = WorkloadKind::ALL.iter().position(|&x| x == w).unwrap() as u64;
    base.wrapping_mul(1_000_003) ^ (os_ix * 97) ^ (w_ix * 1009)
}

/// Measures one cell with default tool options.
pub fn measure_cell(cfg: &RunConfig, os: OsKind, w: WorkloadKind) -> ScenarioMeasurement {
    measure_scenario(
        os,
        w,
        cell_seed(cfg.seed, os, w),
        cfg.duration.hours_for(w),
        &MeasureOptions::default(),
    )
}

/// All 8 cells (2 OSs x 4 workloads), NT first, paper workload order.
pub struct AllCells {
    /// NT 4.0 cells in workload order.
    pub nt: Vec<ScenarioMeasurement>,
    /// Windows 98 cells in workload order.
    pub win98: Vec<ScenarioMeasurement>,
}

/// Measures all 8 cells.
pub fn measure_all(cfg: &RunConfig) -> AllCells {
    let run = |os| {
        WorkloadKind::ALL
            .iter()
            .map(|&w| measure_cell(cfg, os, w))
            .collect()
    };
    AllCells {
        nt: run(OsKind::Nt4),
        win98: run(OsKind::Win98),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_collection_hours_match_paper() {
        let d = Duration::FullCollection;
        assert!((d.hours_for(WorkloadKind::Business) - 4.0).abs() < 1e-9);
        assert!((d.hours_for(WorkloadKind::Games) - 12.5).abs() < 1e-9);
    }

    #[test]
    fn cell_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for os in OsKind::ALL {
            for w in WorkloadKind::ALL {
                assert!(seen.insert(cell_seed(7, os, w)));
            }
        }
    }

    #[test]
    fn quick_cell_measures() {
        let cfg = RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 3,
        };
        let m = measure_cell(&cfg, OsKind::Nt4, WorkloadKind::Web);
        // Every-tick series sees ~3k samples in 3 s; the per-round series
        // is bounded by tool cadence.
        assert!(m.int_to_isr_all_ticks.hist.count() > 1000);
        assert!(m.int_to_isr.hist.count() > 200);
    }
}
