//! The remaining experiments: the §4.2 throughput check, the §6.1 MTTF
//! cross-validation, the §5.2 schedulability analysis and the DESIGN.md §6
//! ablation studies.

use wdm_analysis::sched::{render_sched_report, PeriodicTask};
use wdm_latency::{
    session::{measure_scenario, MeasureOptions},
    tool::MeasurementSession,
    worstcase::LatencySeries,
};
use wdm_osmodel::personality::OsKind;
use wdm_sim::{
    config::KernelConfig,
    dpc::DpcDiscipline,
    kernel::Kernel,
    time::Cycles,
};
use wdm_softmodem::{validate::validate_mttf, Modality};
use wdm_workloads::WorkloadKind;

use crate::cells::{cell_seed, AllCells, RunConfig};

/// The §4.2 throughput comparison: "the average delta between like scores
/// was 10% and the maximum delta was 20%" on Business Winstone.
pub fn throughput(cells: &AllCells) -> String {
    let mut out = String::from(
        "Throughput check (§4.2): application operations completed per\n\
         simulated hour. The paper reports <=10% average / 20% max delta on\n\
         Winstone scores while latency differs by 10-100x.\n\n",
    );
    out += &format!(
        "{:<18}{:>14}{:>14}{:>10}\n",
        "workload", "NT 4.0 ops/h", "Win98 ops/h", "delta"
    );
    let mut labelled = Vec::new();
    for (nt, w98) in cells.nt.iter().zip(&cells.win98) {
        let nt_rate = nt.ops_completed as f64 / nt.collected_hours;
        let w98_rate = w98.ops_completed as f64 / w98.collected_hours;
        let delta = (nt_rate - w98_rate).abs() / nt_rate.max(w98_rate) * 100.0;
        labelled.push((nt.workload, delta));
        out += &format!(
            "{:<18}{:>14.0}{:>14.0}{:>9.1}%\n",
            nt.workload.name(),
            nt_rate,
            w98_rate,
            delta
        );
    }
    let biz = labelled
        .iter()
        .find(|(w, _)| *w == WorkloadKind::Business)
        .map(|(_, d)| *d)
        .unwrap_or(0.0);
    out += &format!(
        "\nBusiness (the paper's Winstone check): {biz:.1}% delta — while the\n\
         weekly worst-case thread latency differs by an order of magnitude.\n"
    );
    out
}

/// The §6.1 validation: analytic MTTF vs direct datapump simulation.
pub fn validate(cfg: &RunConfig) -> String {
    let hours = match cfg.duration {
        crate::cells::Duration::Minutes(m) => (m / 60.0).max(10.0 / 3600.0),
        crate::cells::Duration::FullCollection => 0.5,
    };
    let mut out = String::from(
        "MTTF cross-validation (§6.1): analytic prediction from the latency\n\
         distribution vs direct simulation of the datapump.\n\n",
    );
    out += &format!(
        "{:<14}{:<12}{:<12}{:>10}{:>16}{:>16}{:>9}\n",
        "OS", "workload", "modality", "buffer ms", "predicted s", "observed s", "misses"
    );
    let cases = [
        (OsKind::Win98, WorkloadKind::Games, Modality::Dpc, 8.0),
        (OsKind::Win98, WorkloadKind::Games, Modality::Dpc, 16.0),
        (OsKind::Win98, WorkloadKind::Games, Modality::Thread(28), 16.0),
        (OsKind::Win98, WorkloadKind::Business, Modality::Thread(28), 12.0),
        (OsKind::Nt4, WorkloadKind::Games, Modality::Dpc, 6.0),
        (OsKind::Nt4, WorkloadKind::Games, Modality::Thread(28), 6.0),
    ];
    // Each case is an independent simulation; fan them out and render in
    // case order.
    let threads = crate::parallel::effective_threads(cfg.threads, cases.len());
    let results = crate::parallel::parallel_map(cases.len(), threads, |i| {
        let (os, w, modality, buf) = cases[i];
        validate_mttf(os, w, modality, buf, cell_seed(cfg.seed, os, w) ^ 0xda7a, hours)
    });
    for ((os, w, modality, buf), v) in cases.into_iter().zip(results) {
        let fmt_s = |x: f64| {
            if x.is_infinite() {
                ">horizon".to_string()
            } else {
                format!("{x:.1}")
            }
        };
        out += &format!(
            "{:<14}{:<12}{:<12}{:>10}{:>16}{:>16}{:>9}\n",
            os.name(),
            w.name(),
            match modality {
                Modality::Dpc => "DPC".to_string(),
                Modality::Thread(p) => format!("thread@{p}"),
            },
            buf,
            fmt_s(v.predicted_mttf_s),
            fmt_s(v.observed_mttf_s),
            v.misses
        );
    }
    out += "\nFinding: DPC-modality predictions agree to order of magnitude;\n\
            thread-modality predictions are optimistic on Windows 98 because\n\
            the datapump's own compute is stretched by the same kernel\n\
            sections that cause the dispatch latency.\n";
    out
}

/// The §5.2 schedulability analysis on measured Windows 98 data.
pub fn sched(cells: &AllCells) -> String {
    // Use the Business cell's high-RT thread-dispatch distribution as the
    // blocking source, as the paper's example does.
    let m = &cells.win98[0];
    let events_per_second =
        m.thread_lat_28.hist.count() as f64 / (m.collected_hours * 3600.0);
    let tasks = vec![
        PeriodicTask::new("softmodem-datapump", 8.0, 2.0),
        PeriodicTask::new("lowlatency-audio", 16.0, 3.0),
        PeriodicTask::new("video-decode", 33.0, 8.0),
    ];
    format!(
        "Schedulability analysis on Windows 98 / Business apps (§5.2)\n\
         using the measured RT-28 thread latency distribution\n\
         ({} samples over {:.2} h):\n\n{}",
        m.thread_lat_28.hist.count(),
        m.collected_hours,
        render_sched_report(&m.thread_lat_28.hist, events_per_second, &tasks)
    )
}

/// Seed-sweep stability: how much do the weekly worst-case estimates move
/// across independent seeds? A reproduction-quality check the paper could
/// not afford on real hardware (one lab, hours per cell) but a simulator
/// gets for free.
pub fn stability(cfg: &RunConfig, seeds: usize) -> String {
    assert!(seeds >= 2, "need at least two seeds to measure spread");
    let mut out = format!(
        "Seed-sweep stability of weekly worst-case estimates ({seeds} seeds,\n\
         Windows 98, per-cell duration {:?}):\n\n",
        cfg.duration
    );
    out += &format!(
        "{:<18}{:>14}{:>14}{:>14}{:>12}\n",
        "workload", "thr28 min", "thr28 median", "thr28 max", "max/min"
    );
    // The whole workload x seed grid is independent runs; fan the flat
    // grid out and regroup per workload afterwards.
    let n_wl = WorkloadKind::ALL.len();
    let threads = crate::parallel::effective_threads(cfg.threads, n_wl * seeds);
    let grid = crate::parallel::parallel_map(n_wl * seeds, threads, |job| {
        let wl = WorkloadKind::ALL[job / seeds];
        let i = job % seeds;
        let m = measure_scenario(
            OsKind::Win98,
            wl,
            cfg.seed.wrapping_add(7919 * i as u64 + 1),
            cfg.duration.hours_for(wl).min(0.2),
            &MeasureOptions::default(),
        );
        let (_, _, w) = m.usage.windows();
        m.thread_int_28.expected_max_ms(w, m.collected_hours)
    });
    for (wi, wl) in WorkloadKind::ALL.into_iter().enumerate() {
        let mut weekly: Vec<f64> = grid[wi * seeds..(wi + 1) * seeds].to_vec();
        weekly.sort_by(f64::total_cmp);
        let min = weekly[0];
        let max = *weekly.last().expect("non-empty");
        let median = weekly[weekly.len() / 2];
        out += &format!(
            "{:<18}{:>11.1} ms{:>11.1} ms{:>11.1} ms{:>11.1}x\n",
            wl.name(),
            min,
            median,
            max,
            max / min.max(1e-9)
        );
    }
    out += "\nSpread within ~2-3x across seeds is expected for tail\n\
            statistics at these durations; the OS orderings never flip.\n";
    out
}

/// The §6 feasibility synthesis: Table 1 application classes judged
/// against the measured weekly worst cases of each OS service.
pub fn feasibility(cells: &AllCells) -> String {
    use wdm_analysis::feasibility::{render_feasibility, MeasuredService};
    // Weekly worst case per service, taken across workloads (the driver
    // vendor cannot pick the user's workload).
    let weekly_max = |ms: &[wdm_latency::session::ScenarioMeasurement],
                      pick: &dyn Fn(&wdm_latency::session::ScenarioMeasurement) -> &LatencySeries|
     -> f64 {
        ms.iter()
            .map(|m| {
                let (_, _, w) = m.usage.windows();
                pick(m).expected_max_ms(w, m.collected_hours)
            })
            .fold(0.0, f64::max)
    };
    let services = vec![
        MeasuredService {
            name: "NT4 / DPC".into(),
            worst_case_ms: weekly_max(&cells.nt, &|m| &m.int_to_dpc),
        },
        MeasuredService {
            name: "NT4 / RT-28 thread".into(),
            worst_case_ms: weekly_max(&cells.nt, &|m| &m.thread_int_28),
        },
        MeasuredService {
            name: "Win98 / DPC".into(),
            worst_case_ms: weekly_max(&cells.win98, &|m| &m.int_to_dpc),
        },
        MeasuredService {
            name: "Win98 / RT-28 thread".into(),
            worst_case_ms: weekly_max(&cells.win98, &|m| &m.thread_int_28),
        },
    ];
    let mut out = render_feasibility(&services);
    out += "
The paper's §6 conclusion, mechanized: on NT even RT threads
            serve every class; on Windows 98 compute-intensive drivers are
            forced into DPCs, and thread-based drivers are hopeless.
";
    out
}

/// The §1.2 interactive-latency contrast (Endo et al.): keystroke-to-
/// repaint dispatch under load vs the 50-150 ms adequacy band, next to the
/// real-time tolerances of Table 1.
pub fn interactive(cfg: &RunConfig) -> String {
    use wdm_latency::interactive::{InteractiveProbe, ADEQUATE_MS};
    let mut out = String::from(
        "Interactive event latency under load (Endo et al. regime, §1.2):
         input interrupt -> input DPC -> normal-priority UI thread.

",
    );
    out += &format!(
        "{:<22}{:<18}{:>12}{:>12}{:>12}
",
        "OS", "workload", "mean", "p99", "max"
    );
    // Each OS x workload probe run is an independent simulation; fan them
    // out and render in grid order.
    let grid: Vec<(OsKind, WorkloadKind)> = OsKind::ALL
        .into_iter()
        .flat_map(|os| {
            [WorkloadKind::Business, WorkloadKind::Games]
                .into_iter()
                .map(move |wl| (os, wl))
        })
        .collect();
    let threads = crate::parallel::effective_threads(cfg.threads, grid.len());
    let stats = crate::parallel::parallel_map(grid.len(), threads, |i| {
        let (os, wl) = grid[i];
        let mut scenario = wdm_workloads::build_scenario(
            os,
            wl,
            cell_seed(cfg.seed, os, wl) ^ 0x1717,
            &wdm_workloads::ScenarioOptions::default(),
        );
        let probe = InteractiveProbe::install(&mut scenario.kernel, 10.0);
        let hours = cfg.duration.hours_for(wl).min(0.05);
        scenario.kernel.run_for(Cycles::from_ms_at(
            hours * 3_600_000.0,
            scenario.kernel.config().cpu_hz,
        ));
        probe.records.borrow_mut().flush_staged();
        let r = probe.records.borrow();
        (
            r.dispatch.hist.mean_ms(),
            r.dispatch.hist.quantile_exceeding(0.01),
            r.dispatch.hist.max_ms(),
        )
    });
    for ((os, wl), (mean, p99, max)) in grid.into_iter().zip(stats) {
        out += &format!(
            "{:<22}{:<18}{:>9.2} ms{:>9.2} ms{:>9.2} ms
",
            os.name(),
            wl.name(),
            mean,
            p99,
            max
        );
    }
    out += &format!(
        "
All of it sits far inside the {}-{} ms interactive adequacy band
         — which is why interactive metrics cannot stand in for the 4-40 ms
         tolerances of Table 1's multimedia applications.
",
        ADEQUATE_MS.0, ADEQUATE_MS.1
    );
    out
}

/// The §1.2 microbenchmark contrast: unloaded lmbench-style averages for
/// every OS next to the loaded tails they fail to predict.
pub fn microbench(cfg: &RunConfig) -> String {
    let results: Vec<wdm_latency::Microbench> = OsKind::ALL_WITH_W2K
        .iter()
        .map(|&os| wdm_latency::run_microbench(os, cfg.seed))
        .collect();
    wdm_latency::render_comparison(&results)
}

/// The §6.1 Windows 2000 beta monitoring: the same methodology applied to
/// the NT 5.0 personality, compared against NT 4.0 and Windows 98.
pub fn win2000(cfg: &RunConfig) -> String {
    let mut out = String::from(
        "Windows 2000 beta monitoring (§6.1): weekly worst-case latencies,\n\
         same methodology as Table 3.\n\n",
    );
    // The 2 workloads x 3 OSes are independent cells; fan the flat grid
    // out and render in grid order.
    let grid: Vec<(WorkloadKind, OsKind)> = [WorkloadKind::Business, WorkloadKind::Games]
        .into_iter()
        .flat_map(|wl| OsKind::ALL_WITH_W2K.into_iter().map(move |os| (wl, os)))
        .collect();
    let threads = crate::parallel::effective_threads(cfg.threads, grid.len());
    let rows = crate::parallel::parallel_map(grid.len(), threads, |i| {
        let (wl, os) = grid[i];
        let hours = cfg.duration.hours_for(wl);
        let m = measure_scenario(
            os,
            wl,
            cell_seed(cfg.seed, os, wl),
            hours,
            &MeasureOptions::default(),
        );
        let (_, _, w) = m.usage.windows();
        let wk = |s: &LatencySeries| s.expected_max_ms(w, hours);
        (
            wk(&m.int_to_isr),
            wk(&m.int_to_dpc),
            wk(&m.thread_int_28),
            wk(&m.thread_int_24),
        )
    });
    let per_wl = OsKind::ALL_WITH_W2K.len();
    for (wi, wl) in [WorkloadKind::Business, WorkloadKind::Games]
        .into_iter()
        .enumerate()
    {
        out += &format!("{}:\n", wl.name());
        out += &format!(
            "  {:<22}{:>14}{:>14}{:>14}{:>14}\n",
            "OS", "int->ISR", "int->DPC", "int->thr28", "int->thr24"
        );
        for (oi, os) in OsKind::ALL_WITH_W2K.into_iter().enumerate() {
            let (isr, dpc, t28, t24) = rows[wi * per_wl + oi];
            out += &format!(
                "  {:<22}{:>12.2}ms{:>12.2}ms{:>12.2}ms{:>12.2}ms\n",
                os.name(),
                isr,
                dpc,
                t28,
                t24
            );
        }
        out.push('\n');
    }
    out += "The beta tracks NT 4.0's profile with modest improvements — the\n\
            structural gap to Windows 98 is unchanged.\n";
    out
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------

/// Measures the DPC latency tail under a queue discipline (ablation 1).
pub fn ablate_dpc_discipline(minutes: f64, seed: u64) -> String {
    // A raw kernel with a synthetic DPC storm isolates the queueing effect
    // from the rest of the workload machinery.
    let run = |discipline| {
        let cfg = KernelConfig {
            dpc_discipline: discipline,
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let session = MeasurementSession::install(&mut k, 1.0);
        // A storm of foreign DPCs: 600/s, 0.2-1.5 ms each.
        let label = k.intern("STORM", "_Dpc");
        let cpu = k.config().cpu_hz;
        for i in 0..4 {
            let dpc = k.create_dpc(
                &format!("storm-{i}"),
                wdm_sim::dpc::DpcImportance::Medium,
                Box::new(wdm_workloads::programs::DeviceDpc::new(
                    wdm_osmodel::Dist::Uniform { lo: 0.2, hi: 1.5 },
                    cpu,
                    label,
                )),
            );
            let v = k.install_vector(
                &format!("storm-{i}"),
                wdm_sim::irql::Irql(10 + i as u8),
                Box::new(wdm_workloads::programs::DeviceIsr::new(
                    wdm_osmodel::Dist::Constant(0.01),
                    cpu,
                    label,
                    Some(dpc),
                )),
            );
            k.add_env_source(wdm_sim::env::EnvSource::new(
                &format!("storm-arrivals-{i}"),
                wdm_osmodel::dist::poisson_arrivals(150.0, cpu),
                wdm_sim::env::EnvAction::AssertInterrupt(v),
            ));
        }
        k.run_for(Cycles::from_ms(minutes * 60_000.0));
        session.flush();
        let truth = session.truth.borrow();
        let s: &LatencySeries = &truth.dpcs[&session.rt28.dpc].lat;
        (s.hist.quantile_exceeding(0.001), s.hist.max_ms())
    };
    let (fifo_p999, fifo_max) = run(DpcDiscipline::Fifo);
    let (lifo_p999, lifo_max) = run(DpcDiscipline::Lifo);
    format!(
        "Ablation: DPC queue discipline under a 600/s foreign DPC storm\n\
         (measurement DPC latency)\n\
         FIFO (WDM):  p99.9 = {fifo_p999:.3} ms, max = {fifo_max:.3} ms\n\
         LIFO:        p99.9 = {lifo_p999:.3} ms, max = {lifo_max:.3} ms\n\
         WDM's FIFO bounds queue time by total backlog; LIFO lets newly\n\
         queued DPCs starve older ones, stretching the tail.\n"
    )
}

/// Measures PIT frequency's effect on timer-DPC latency (ablation 2).
pub fn ablate_pit_frequency(minutes: f64, seed: u64) -> String {
    let run = |hz: u64| {
        let cfg = KernelConfig {
            pit_hz: hz,
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let session = MeasurementSession::install(&mut k, 1.0);
        k.run_for(Cycles::from_ms(minutes * 60_000.0));
        session.flush();
        let r = session.rt28.results.borrow();
        (
            r.est_int_to_dpc.hist.mean_ms(),
            r.rounds,
            k.account.isr as f64 / k.now().0 as f64 * 100.0,
        )
    };
    let (mean_100, rounds_100, isr_100) = run(100);
    let (mean_1k, rounds_1k, isr_1k) = run(1_000);
    format!(
        "Ablation: PIT frequency (paper §2.2 raises 67-100 Hz to 1 kHz)\n\
         100 Hz: est. timer->DPC latency mean = {mean_100:.3} ms, rounds = {rounds_100}, ISR overhead = {isr_100:.2}%\n\
         1 kHz:  est. timer->DPC latency mean = {mean_1k:.3} ms, rounds = {rounds_1k}, ISR overhead = {isr_1k:.2}%\n\
         The 1 kHz PIT gives ~1 ms measurement resolution at ~10x the tick\n\
         overhead, which stays negligible.\n"
    )
}

/// Measures quantum length's effect on RT-24 thread latency (ablation 4).
pub fn ablate_quantum(minutes: f64, seed: u64) -> String {
    let run = |quantum_ms: f64| {
        let hours = minutes / 60.0;
        // Patch the NT personality quantum via a bespoke measurement: use
        // measure_scenario but override through the personality is not
        // plumbed; instead approximate with a raw kernel + work-item queue.
        let cfg = KernelConfig {
            quantum: Cycles::from_ms(quantum_ms),
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let session = MeasurementSession::install(&mut k, 1.0);
        let _q = wdm_osmodel::WorkItemQueue::install(
            &mut k,
            40.0,
            wdm_osmodel::Dist::Uniform { lo: 0.5, hi: 6.0 },
        );
        k.run_for(Cycles::from_ms(hours * 3_600_000.0));
        session.flush();
        let truth = session.truth.borrow();
        truth.threads[&session.rt24.thread].lat
            .hist
            .quantile_exceeding(0.001)
    };
    let q20 = run(20.0);
    let q120 = run(120.0);
    format!(
        "Ablation: scheduler quantum vs RT-24 thread latency behind the\n\
         work-item thread (p99.9)\n\
         quantum  20 ms: {q20:.3} ms\n\
         quantum 120 ms: {q120:.3} ms\n\
         A longer quantum lets the equal-priority work-item thread hold the\n\
         CPU longer before the measurement thread runs.\n"
    )
}

/// Compares section tail families for Win98 (ablation 3).
pub fn ablate_tail_family(minutes: f64, seed: u64) -> String {
    let run = |dist: wdm_osmodel::Dist, name: &str| {
        let cfg = KernelConfig {
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let session = MeasurementSession::install(&mut k, 1.0);
        let label = k.intern("VMM", "_Section");
        let cpu = k.config().cpu_hz;
        k.add_env_source(wdm_sim::env::EnvSource::new(
            "sections",
            wdm_osmodel::dist::poisson_arrivals(20.0, cpu),
            wdm_sim::env::EnvAction::Section {
                duration: dist.sampler(cpu),
                label,
            },
        ));
        k.run_for(Cycles::from_ms(minutes * 60_000.0));
        session.flush();
        let truth = session.truth.borrow();
        let h = &truth.threads[&session.rt28.thread].lat.hist;
        format!(
            "  {name:<34} p99 = {:>7.3} ms, p99.9 = {:>7.3} ms, max = {:>7.2} ms\n",
            h.quantile_exceeding(0.01),
            h.quantile_exceeding(0.001),
            h.max_ms()
        )
    };
    let mut out = String::from(
        "Ablation: section-duration tail family (same median, same cap)\n\
         vs thread latency distribution\n",
    );
    out += &run(
        wdm_osmodel::Dist::LogNormal {
            median: 0.35,
            sigma: 0.95,
            cap: 30.0,
        },
        "log-normal (median 0.35, sigma 0.95)",
    );
    out += &run(
        wdm_osmodel::Dist::ParetoBounded {
            xmin: 0.35,
            alpha: 1.3,
            cap: 30.0,
        },
        "bounded Pareto (xmin 0.35, a=1.3)",
    );
    out += "The bounded Pareto pushes more mass into the mid-tail for the\n\
            same cap; the log-normal matches Figure 4's near-linear log-log\n\
            decay better, which is why the personalities use it.\n";
    out
}

/// All four ablations, fanned out over `threads` workers (0 = auto). Each
/// ablation is a pair of independent simulations rendering to a String, so
/// running them concurrently cannot change the joined output.
pub fn ablations(minutes: f64, seed: u64, threads: usize) -> String {
    let jobs: [fn(f64, u64) -> String; 4] = [
        ablate_dpc_discipline,
        ablate_pit_frequency,
        ablate_quantum,
        ablate_tail_family,
    ];
    let threads = crate::parallel::effective_threads(threads, jobs.len());
    crate::parallel::parallel_map(jobs.len(), threads, |i| jobs[i](minutes, seed)).join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::{measure_all, Duration, RunConfig};

    #[test]
    fn throughput_and_sched_render() {
        let cfg = RunConfig {
            duration: Duration::Minutes(0.1),
            seed: 5,
            threads: 0,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
        batch_record: true,
        blame: None,
        flame_hz: None,
        };
        let cells = measure_all(&cfg);
        let t = throughput(&cells);
        assert!(t.contains("Business"));
        assert!(t.contains("delta"));
        let s = sched(&cells);
        assert!(s.contains("softmodem-datapump"));
    }

    #[test]
    fn ablations_render() {
        let a = ablations(0.2, 5, 0);
        assert!(a.contains("FIFO"));
        assert!(a.contains("1 kHz"));
        assert!(a.contains("quantum"));
        assert!(a.contains("Pareto"));
    }
}
