//! Verbosity-controlled progress reporting on stderr.
//!
//! Every harness progress line funnels through here so the `repro` CLI's
//! `--quiet`/`--verbose` flags act uniformly: [`note`] lines show by
//! default, [`detail`] lines (per-shard progress, timings) only under
//! `--verbose`, and `--quiet` silences both. Lines are prefixed
//! `repro: [scope]` — scopes name the cell/shard doing the work, e.g.
//! `cell Nt4/Business shard 2/4` — so interleaved worker output from the
//! parallel fan-out stays attributable. Errors never route through here;
//! they print unconditionally and exit nonzero.

use std::sync::atomic::{AtomicU8, Ordering};

/// How much progress output to emit on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// No progress lines at all (errors still print).
    Quiet,
    /// High-level lines only (the default).
    Normal,
    /// Per-shard lines and timings too.
    Verbose,
}

static LEVEL: AtomicU8 = AtomicU8::new(1);

/// Sets the process-wide verbosity (main parses the flags once).
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current process-wide verbosity.
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// A high-level progress line; shown unless `--quiet`.
pub fn note(scope: &str, msg: &str) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("repro: [{scope}] {msg}");
    }
}

/// A fine-grained progress line; shown only under `--verbose`. One write
/// per line, so lines from parallel workers interleave whole.
pub fn detail(scope: &str, msg: &str) {
    if verbosity() >= Verbosity::Verbose {
        eprintln!("repro: [{scope}] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
    }

    #[test]
    fn set_and_read_back() {
        let prev = verbosity();
        set_verbosity(Verbosity::Verbose);
        assert_eq!(verbosity(), Verbosity::Verbose);
        set_verbosity(Verbosity::Quiet);
        assert_eq!(verbosity(), Verbosity::Quiet);
        set_verbosity(prev);
    }
}
