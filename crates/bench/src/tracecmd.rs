//! The `repro trace` and `repro metrics` artifacts.
//!
//! `trace` re-runs the 8-cell grid with a flight recorder attached to each
//! cell and the harness span sink enabled, then writes Chrome trace-event
//! JSON: one `TRACE_<os>_<workload>.json` per cell plus a combined
//! `TRACE_cells.json` holding every cell (pid 2+) *and* the harness's own
//! cell/shard/merge spans (pid 1) so shard imbalance is visible in the
//! same timeline. The files load directly in Perfetto.
//!
//! `metrics` runs the grid untraced and renders every cell's unified
//! [`wdm_sim::metrics::MetricsSnapshot`] as `METRICS_cells.json`. Metrics
//! are merged exactly across shards (counters sum, histograms add
//! bin-wise), so the file is identical for any `--shards`-compatible
//! streamed run and deterministic enough for CI to diff against a
//! committed reference.

use std::io;
use std::path::{Path, PathBuf};

use wdm_sim::flight::chrome_document;

use crate::{
    cells::{measure_all_timed, AllCells, Duration, RunConfig, TimedCells},
    spans,
};

/// `nt4_business`-style file-name stem for a cell.
pub fn cell_stem(m: &wdm_latency::session::ScenarioMeasurement) -> String {
    format!("{:?}_{:?}", m.os, m.workload).to_lowercase()
}

/// Renders `METRICS_cells.json`: run parameters plus each cell's metrics
/// snapshot, NT first, paper workload order.
pub fn render_metrics_json(cfg: &RunConfig, cells: &AllCells) -> String {
    let minutes = match cfg.duration {
        Duration::Minutes(m) => m,
        Duration::FullCollection => -1.0, // sentinel: full §3.1 durations
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"minutes_per_cell\": {minutes},\n"));
    out.push_str(&format!("  \"shards\": {},\n", cfg.shards));
    out.push_str("  \"cells\": [\n");
    let all: Vec<_> = cells.nt.iter().chain(&cells.win98).collect();
    for (i, m) in all.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"os\": \"{:?}\", \"workload\": \"{:?}\", \"metrics\": {}}}{}\n",
            m.os,
            m.workload,
            m.metrics.to_json("    "),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the traced grid and writes the per-cell and combined trace files
/// into `dir`. Returns the paths written, cell files first.
pub fn run_trace(cfg: &RunConfig, dir: &Path) -> io::Result<(TimedCells, Vec<PathBuf>)> {
    spans::enable();
    let traced = RunConfig { trace: true, ..*cfg };
    let t = measure_all_timed(&traced);
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut combined: Vec<String> = Vec::new();
    for m in t.cells.nt.iter().chain(&t.cells.win98) {
        let path = dir.join(format!("TRACE_{}.json", cell_stem(m)));
        std::fs::write(&path, chrome_document(&m.trace_events))?;
        written.push(path);
        combined.extend(m.trace_events.iter().cloned());
    }
    combined.extend(spans::drain());
    let path = dir.join("TRACE_cells.json");
    std::fs::write(&path, chrome_document(&combined))?;
    written.push(path);
    Ok((t, written))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig {
            duration: Duration::Minutes(0.05),
            seed: 7,
            threads: 1,
            shards: 1,
            trace: false,
            compile: true,
            sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
            batch_record: true,
            blame: None,
            flame_hz: None,
        }
    }

    #[test]
    fn metrics_json_lists_all_cells_with_sim_counters() {
        let t = measure_all_timed(&tiny_cfg());
        let j = render_metrics_json(&tiny_cfg(), &t.cells);
        assert_eq!(j.matches("\"metrics\":").count(), 8);
        assert!(j.contains("\"sim.events\""));
        assert!(j.contains("\"latency.ops_completed\""));
        assert!(j.contains("\"latency.hist.thread_lat_28_ms\""));
        assert!(j.contains("\"os\": \"Nt4\"") && j.contains("\"os\": \"Win98\""));
        let depth = j.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "balanced json");
    }

    #[test]
    fn traced_grid_writes_per_cell_and_combined_files() {
        let dir = std::env::temp_dir().join(format!(
            "wdm_trace_test_{}",
            std::process::id()
        ));
        let (t, files) = run_trace(&tiny_cfg(), &dir).expect("trace run");
        assert_eq!(files.len(), 9, "8 cell files + combined");
        for m in t.cells.nt.iter().chain(&t.cells.win98) {
            assert!(!m.trace_events.is_empty(), "recorder captured events");
        }
        let combined = std::fs::read_to_string(dir.join("TRACE_cells.json")).unwrap();
        assert!(combined.starts_with("{\"traceEvents\":["));
        assert!(combined.contains("\"repro harness\""));
        assert!(combined.contains("\"ph\":\"X\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
