//! Criterion microbenchmarks of the simulator primitives: how fast the
//! substrate itself runs. These guard against performance regressions that
//! would make the full-collection reproduction runs impractical.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wdm_latency::{histogram::LatencyHistogram, tool::MeasurementSession};
use wdm_osmodel::personality::OsKind;
use wdm_sim::prelude::*;
use wdm_workloads::{build_scenario, ScenarioOptions, WorkloadKind};

/// One simulated second of an idle kernel (PIT only).
fn bench_idle_kernel(c: &mut Criterion) {
    c.bench_function("sim/idle_kernel_1s", |b| {
        b.iter_batched(
            || Kernel::new(KernelConfig::default()),
            |mut k| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// One simulated second with the full measurement session installed.
fn bench_measured_kernel(c: &mut Criterion) {
    c.bench_function("sim/measured_kernel_1s", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new(KernelConfig::default());
                let s = MeasurementSession::install(&mut k, 1.0);
                (k, s)
            },
            |(mut k, _s)| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// One simulated second of the heaviest cell (Win98 + 3D games).
fn bench_games_cell(c: &mut Criterion) {
    c.bench_function("sim/win98_games_cell_1s", |b| {
        b.iter_batched(
            || {
                build_scenario(
                    OsKind::Win98,
                    WorkloadKind::Games,
                    7,
                    &ScenarioOptions::default(),
                )
            },
            |mut s| s.kernel.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// Event signal -> thread dispatch round trips.
fn bench_event_roundtrip(c: &mut Criterion) {
    c.bench_function("sim/event_signal_roundtrip_1000x", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new(KernelConfig::default());
                let evt = k.create_event(EventKind::Synchronization, false);
                let slot = k.alloc_slots(1);
                let _t = k.create_thread(
                    "waiter",
                    28,
                    Box::new(LoopSeq::new(vec![
                        Step::Wait(WaitObject::Event(evt)),
                        Step::ReadTsc(slot),
                    ])),
                );
                let dpc = k.create_dpc(
                    "sig",
                    DpcImportance::Medium,
                    Box::new(OpSeq::new(vec![Step::SetEvent(evt), Step::Return])),
                );
                let timer = k.create_timer(Some(dpc));
                let _armer = k.create_thread(
                    "armer",
                    16,
                    Box::new(OpSeq::new(vec![Step::SetTimer {
                        timer,
                        due: Cycles::from_ms(1.0),
                        period: Some(Cycles::from_ms(1.0)),
                    }])),
                );
                k
            },
            // 1000 timer->DPC->event->thread cycles.
            |mut k| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// Histogram recording throughput.
fn bench_histogram(c: &mut Criterion) {
    c.bench_function("latency/histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::fig4();
            for i in 0..100_000u64 {
                h.record_ms((i % 977) as f64 * 0.013);
            }
            std::hint::black_box(h.count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_idle_kernel, bench_measured_kernel, bench_games_cell,
              bench_event_roundtrip, bench_histogram
}
criterion_main!(benches);
