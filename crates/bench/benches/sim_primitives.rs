//! Criterion microbenchmarks of the simulator primitives: how fast the
//! substrate itself runs. These guard against performance regressions that
//! would make the full-collection reproduction runs impractical.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wdm_latency::{histogram::LatencyHistogram, tool::MeasurementSession};
use wdm_osmodel::personality::OsKind;
use wdm_sim::prelude::*;
use wdm_workloads::{build_scenario, ScenarioOptions, WorkloadKind};

/// Global allocator wrapper that counts heap acquisitions (alloc, realloc,
/// alloc_zeroed). The per-event benches below warm a kernel to steady state
/// and then assert the count stays flat across millions of simulated
/// events — the notify, WaitAny and timer-expiry hot paths must not touch
/// the heap per event.
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static OPS: AtomicU64 = AtomicU64::new(0);

    pub struct CountingAlloc;

    /// Heap acquisitions since process start.
    pub fn ops() -> u64 {
        OPS.load(Ordering::Relaxed)
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, l: Layout) -> *mut u8 {
            OPS.fetch_add(1, Ordering::Relaxed);
            System.alloc(l)
        }
        unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
            OPS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(l)
        }
        unsafe fn realloc(&self, p: *mut u8, l: Layout, new: usize) -> *mut u8 {
            OPS.fetch_add(1, Ordering::Relaxed);
            System.realloc(p, l, new)
        }
        unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
            System.dealloc(p, l)
        }
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Heap acquisitions performed while running `f`.
fn heap_ops_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = counting_alloc::ops();
    let r = f();
    (counting_alloc::ops() - before, r)
}

/// Observer that dispatches every hook without allocating, so the benches
/// exercise the real observer notification path.
#[derive(Default)]
struct CountingObserver {
    events: u64,
}

impl Observer for CountingObserver {
    fn on_isr_enter(&mut self, _e: &IsrEnter) {
        self.events += 1;
    }
    fn on_dpc_start(&mut self, _e: &DpcStart) {
        self.events += 1;
    }
    fn on_thread_resume(&mut self, _e: &ThreadResume) {
        self.events += 1;
    }
    fn on_context_switch(&mut self, _f: Option<ThreadId>, _t: ThreadId, _n: Instant) {
        self.events += 1;
    }
}

/// [`CountingObserver`] narrowed to DPC starts only: everything else the
/// kernel emits is a masked-out kind that must cost one branch.
#[derive(Default)]
struct DpcOnlyObserver {
    events: u64,
}

impl Observer for DpcOnlyObserver {
    fn interest(&self) -> Interest {
        Interest::DPC_START
    }
    fn on_dpc_start(&mut self, _e: &DpcStart) {
        self.events += 1;
    }
}

/// One simulated second of an idle kernel (PIT only).
fn bench_idle_kernel(c: &mut Criterion) {
    c.bench_function("sim/idle_kernel_1s", |b| {
        b.iter_batched(
            || Kernel::new(KernelConfig::default()),
            |mut k| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// One simulated second with the full measurement session installed.
fn bench_measured_kernel(c: &mut Criterion) {
    c.bench_function("sim/measured_kernel_1s", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new(KernelConfig::default());
                let s = MeasurementSession::install(&mut k, 1.0);
                (k, s)
            },
            |(mut k, _s)| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// One simulated second of the heaviest cell (Win98 + 3D games).
fn bench_games_cell(c: &mut Criterion) {
    c.bench_function("sim/win98_games_cell_1s", |b| {
        b.iter_batched(
            || {
                build_scenario(
                    OsKind::Win98,
                    WorkloadKind::Games,
                    7,
                    &ScenarioOptions::default(),
                )
            },
            |mut s| s.kernel.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// Event signal -> thread dispatch round trips.
fn bench_event_roundtrip(c: &mut Criterion) {
    c.bench_function("sim/event_signal_roundtrip_1000x", |b| {
        b.iter_batched(
            || {
                let mut k = Kernel::new(KernelConfig::default());
                let evt = k.create_event(EventKind::Synchronization, false);
                let slot = k.alloc_slots(1);
                let _t = k.create_thread(
                    "waiter",
                    28,
                    Box::new(LoopSeq::new(vec![
                        Step::Wait(WaitObject::Event(evt)),
                        Step::ReadTsc(slot),
                    ])),
                );
                let dpc = k.create_dpc(
                    "sig",
                    DpcImportance::Medium,
                    Box::new(OpSeq::new(vec![Step::SetEvent(evt), Step::Return])),
                );
                let timer = k.create_timer(Some(dpc));
                let _armer = k.create_thread(
                    "armer",
                    16,
                    Box::new(OpSeq::new(vec![Step::SetTimer {
                        timer,
                        due: Cycles::from_ms(1.0),
                        period: Some(Cycles::from_ms(1.0)),
                    }])),
                );
                k
            },
            // 1000 timer->DPC->event->thread cycles.
            |mut k| k.run_for(Cycles::from_ms(1_000.0)),
            BatchSize::SmallInput,
        )
    });
}

/// Timer -> DPC -> SetEvent -> waiting thread, with observers installed on
/// every hook: the full notify dispatch path fires per ISR entry, DPC
/// start, thread resume and context switch.
fn notify_kernel() -> (Kernel, ObserverHandle<CountingObserver>) {
    let mut k = Kernel::new(KernelConfig::default());
    let obs: ObserverHandle<CountingObserver> = Rc::new(RefCell::new(CountingObserver::default()));
    k.add_observer(obs.clone());
    // A second observer so the dispatch loop genuinely iterates.
    k.add_observer(Rc::new(RefCell::new(CountingObserver::default())));
    let evt = k.create_event(EventKind::Synchronization, false);
    let slot = k.alloc_slots(1);
    let _t = k.create_thread(
        "waiter",
        28,
        Box::new(LoopSeq::new(vec![
            Step::Wait(WaitObject::Event(evt)),
            Step::ReadTsc(slot),
        ])),
    );
    let dpc = k.create_dpc(
        "sig",
        DpcImportance::Medium,
        Box::new(OpSeq::new(vec![Step::SetEvent(evt), Step::Return])),
    );
    let timer = k.create_timer(Some(dpc));
    let _armer = k.create_thread(
        "armer",
        16,
        Box::new(OpSeq::new(vec![Step::SetTimer {
            timer,
            due: Cycles::from_ms(1.0),
            period: Some(Cycles::from_ms(1.0)),
        }])),
    );
    (k, obs)
}

/// Thread looping on a two-event WaitAny set, satisfied by a periodic DPC:
/// exercises the wait-set scan, block and ready paths each cycle.
fn waitany_kernel() -> Kernel {
    let mut k = Kernel::new(KernelConfig::default());
    let a = k.create_event(EventKind::Synchronization, false);
    let b = k.create_event(EventKind::Synchronization, false);
    let set = k.create_wait_set(vec![WaitObject::Event(a), WaitObject::Event(b)]);
    let slot = k.alloc_slots(1);
    let _t = k.create_thread(
        "any-waiter",
        28,
        Box::new(LoopSeq::new(vec![
            Step::WaitAny(set),
            Step::ReadTsc(slot),
        ])),
    );
    let dpc = k.create_dpc(
        "sig-b",
        DpcImportance::Medium,
        Box::new(OpSeq::new(vec![Step::SetEvent(b), Step::Return])),
    );
    let timer = k.create_timer(Some(dpc));
    let _armer = k.create_thread(
        "armer",
        16,
        Box::new(OpSeq::new(vec![Step::SetTimer {
            timer,
            due: Cycles::from_ms(1.0),
            period: Some(Cycles::from_ms(1.0)),
        }])),
    );
    k
}

/// Thread blocking directly on a one-shot kernel timer it re-arms each
/// iteration (re-arming clears the signal, so every cycle genuinely
/// blocks): each expiry wakes the waiter queue from the clock ISR.
fn timer_expiry_kernel() -> Kernel {
    let mut k = Kernel::new(KernelConfig::default());
    let timer = k.create_timer(None);
    let slot = k.alloc_slots(1);
    let _t = k.create_thread(
        "timer-waiter",
        28,
        Box::new(LoopSeq::new(vec![
            Step::SetTimer {
                timer,
                due: Cycles::from_ms(1.0),
                period: None,
            },
            Step::Wait(WaitObject::Timer(timer)),
            Step::ReadTsc(slot),
        ])),
    );
    k
}

/// Warms `k` to steady state, then asserts one simulated second of
/// `label` processes events without a single heap acquisition.
fn assert_alloc_free(label: &str, k: &mut Kernel) -> u64 {
    k.run_for(Cycles::from_ms(200.0));
    let events_before = k.sim_events;
    let (ops, _) = heap_ops_during(|| k.run_for(Cycles::from_ms(1_000.0)));
    let events = k.sim_events - events_before;
    assert!(events > 1_000, "{label}: expected a busy steady state");
    assert_eq!(
        ops, 0,
        "{label}: {ops} heap acquisitions across {events} events; \
         the per-event hot path must not allocate"
    );
    events
}

/// Steady-state notify dispatch (observers installed), allocation-checked.
fn bench_notify_steady_state(c: &mut Criterion) {
    let (mut k, obs) = notify_kernel();
    let events = assert_alloc_free("notify", &mut k);
    assert!(obs.borrow().events > 0, "observer hooks must have fired");
    eprintln!("  alloc-check notify: 0 heap ops across {events} events");
    c.bench_function("sim/notify_steady_1s", |b| {
        b.iter(|| {
            k.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(k.sim_events)
        })
    });
}

/// The interest-mask contract, cost-checked exactly: with only a
/// DPC-interested observer installed, the kernel takes/restores the
/// observer list *only* for DPC deliveries — ISR entries, thread resumes
/// and (far more frequent) context switches never touch it. The paired
/// full-interest kernel shows the traffic the mask removes, and a Criterion
/// timing tracks the wall-clock side of the same path.
fn bench_masked_notify(c: &mut Criterion) {
    // Same workload as `notify_kernel`, but the observer wants one kind.
    let build = |kind: &str| -> (Kernel, u64) {
        let mut k = Kernel::new(KernelConfig::default());
        match kind {
            "masked" => k.add_observer(Rc::new(RefCell::new(DpcOnlyObserver::default()))),
            "full" => k.add_observer(Rc::new(RefCell::new(CountingObserver::default()))),
            // A flight recorder constructed with an empty interest mask:
            // attached but wanting nothing, it must cost nothing.
            "recorder-off" => k.add_observer(Rc::new(RefCell::new(
                FlightRecorder::with_interest(1024, Interest::NONE),
            ))),
            _ => unreachable!(),
        }
        let evt = k.create_event(EventKind::Synchronization, false);
        let slot = k.alloc_slots(1);
        let _t = k.create_thread(
            "waiter",
            28,
            Box::new(LoopSeq::new(vec![
                Step::Wait(WaitObject::Event(evt)),
                Step::ReadTsc(slot),
            ])),
        );
        let dpc = k.create_dpc(
            "sig",
            DpcImportance::Medium,
            Box::new(OpSeq::new(vec![Step::SetEvent(evt), Step::Return])),
        );
        let timer = k.create_timer(Some(dpc));
        let _armer = k.create_thread(
            "armer",
            16,
            Box::new(OpSeq::new(vec![Step::SetTimer {
                timer,
                due: Cycles::from_ms(1.0),
                period: Some(Cycles::from_ms(1.0)),
            }])),
        );
        k.run_for(Cycles::from_ms(1_000.0));
        let dpc_events = k.dpc(dpc).run_count;
        (k, dpc_events)
    };

    let (masked, masked_dpcs) = build("masked");
    let (full, _) = build("full");
    let (rec_off, rec_off_dpcs) = build("recorder-off");
    assert!(masked_dpcs > 500, "steady DPC traffic expected");
    assert!(rec_off_dpcs > 500, "steady DPC traffic expected");
    assert_eq!(
        rec_off.notify_takes, 0,
        "a fully-masked flight recorder must add zero observer takes \
         (got {} across {} DPC deliveries)",
        rec_off.notify_takes, rec_off_dpcs
    );
    eprintln!(
        "  recorder-off check: 0 list takes across {rec_off_dpcs} DPC deliveries"
    );
    assert_eq!(
        masked.notify_takes, masked_dpcs,
        "masked-out kinds took the observer list: {} takes for {} DPC \
         deliveries",
        masked.notify_takes, masked_dpcs
    );
    assert!(
        full.notify_takes > masked.notify_takes * 3,
        "full interest must generate strictly more list traffic \
         (full {} vs masked {})",
        full.notify_takes,
        masked.notify_takes
    );
    eprintln!(
        "  mask check: {} list takes (= DPC deliveries) masked vs {} full",
        masked.notify_takes, full.notify_takes
    );
    let mut k = masked;
    c.bench_function("sim/masked_notify_steady_1s", |b| {
        b.iter(|| {
            k.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(k.sim_events)
        })
    });
}

/// Steady-state WaitAny block/ready cycling, allocation-checked.
fn bench_waitany_steady_state(c: &mut Criterion) {
    let mut k = waitany_kernel();
    let events = assert_alloc_free("WaitAny", &mut k);
    eprintln!("  alloc-check WaitAny: 0 heap ops across {events} events");
    c.bench_function("sim/waitany_steady_1s", |b| {
        b.iter(|| {
            k.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(k.sim_events)
        })
    });
}

/// Steady-state timer-expiry waiter wakes, allocation-checked.
fn bench_timer_expiry_steady_state(c: &mut Criterion) {
    let mut k = timer_expiry_kernel();
    let events = assert_alloc_free("timer expiry", &mut k);
    eprintln!("  alloc-check timer expiry: 0 heap ops across {events} events");
    c.bench_function("sim/timer_expiry_steady_1s", |b| {
        b.iter(|| {
            k.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(k.sim_events)
        })
    });
}

/// A kernel whose every tick does one unit of real timer work (a 1 ms
/// periodic DPC timer), optionally loaded with a thousand armed far-future
/// timers and a thousand far-future sleepers that must cost nothing.
fn calendar_load_kernel(loaded: bool) -> Kernel {
    let mut k = Kernel::new(KernelConfig::default());
    let dpc = k.create_dpc(
        "tick-dpc",
        DpcImportance::Medium,
        Box::new(OpSeq::new(vec![Step::Return])),
    );
    let active = k.create_timer(Some(dpc));
    k.set_timer(active, Cycles::from_ms(1.0), Some(Cycles::from_ms(1.0)));
    if loaded {
        // An hour out: armed for the whole measurement, never due.
        let far = Cycles::from_ms(3_600_000.0);
        for _ in 0..1000 {
            let t = k.create_timer(None);
            k.set_timer(t, far, None);
        }
        for i in 0..1000 {
            k.create_thread(
                &format!("far-sleeper-{i}"),
                4,
                Box::new(OpSeq::new(vec![Step::Sleep(far)])),
            );
        }
    }
    k
}

/// The event calendar's core contract: clock-tick cost scales with *due*
/// events only. A thousand armed far-future timers plus a thousand
/// far-future sleepers must not add a single unit of tick work — the
/// kernel's `calendar_tick_work` counter (heap pops, stale skips and
/// due-count visits) proves it exactly, and the paired Criterion timings
/// expose any wall-clock regression.
fn bench_calendar_tick_independence(c: &mut Criterion) {
    let mut base = calendar_load_kernel(false);
    let mut loaded = calendar_load_kernel(true);
    base.run_for(Cycles::from_ms(200.0));
    loaded.run_for(Cycles::from_ms(200.0));
    let start = (base.calendar_tick_work(), loaded.calendar_tick_work());
    base.run_for(Cycles::from_ms(1_000.0));
    loaded.run_for(Cycles::from_ms(1_000.0));
    let base_work = base.calendar_tick_work() - start.0;
    let loaded_work = loaded.calendar_tick_work() - start.1;
    assert!(base_work > 0, "the periodic timer must generate tick work");
    assert_eq!(
        base_work, loaded_work,
        "non-due calendar entries leaked into clock-tick work"
    );
    eprintln!(
        "  tick-work check: {base_work} due-entry visits per simulated second, \
         identical with 1000 idle timers + 1000 idle sleepers armed"
    );
    c.bench_function("sim/calendar_tick_base_1s", |b| {
        b.iter(|| {
            base.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(base.sim_events)
        })
    });
    c.bench_function("sim/calendar_tick_loaded_1s", |b| {
        b.iter(|| {
            loaded.run_for(Cycles::from_ms(1_000.0));
            std::hint::black_box(loaded.sim_events)
        })
    });
}

/// Histogram recording throughput.
fn bench_histogram(c: &mut Criterion) {
    c.bench_function("latency/histogram_record_100k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::fig4();
            for i in 0..100_000u64 {
                h.record_ms((i % 977) as f64 * 0.013);
            }
            std::hint::black_box(h.count())
        })
    });

    // The batched accumulator cost in isolation: a staged cycle batch
    // folded through the exact u128 epoch sums (DESIGN.md §14). The
    // full-pipeline `measure_events_per_sec` moves within host noise —
    // recording is a small slice of serial wall time — so this is where
    // the fold itself is actually observable.
    let cpu_hz = 300_000_000u64;
    let cycles: Vec<u64> = (0..100_000u64).map(|i| (i % 977) * 3_900).collect();
    c.bench_function("latency/batch_fold_v2_100k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::fig4();
            h.record_cycles_batch(&cycles, cpu_hz);
            std::hint::black_box(h.count())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_idle_kernel, bench_measured_kernel, bench_games_cell,
              bench_event_roundtrip, bench_notify_steady_state,
              bench_masked_notify, bench_waitany_steady_state,
              bench_timer_expiry_steady_state,
              bench_calendar_tick_independence, bench_histogram
}
criterion_main!(benches);
