//! Criterion benches for the DESIGN.md §6 ablation studies. Each bench
//! runs the corresponding ablation harness at a reduced duration; the
//! quality metrics themselves are printed by `repro ablations`.

use criterion::{criterion_group, criterion_main, Criterion};
use wdm_bench::extras;

const MINUTES: f64 = 0.1;
const SEED: u64 = 1999;

fn bench_dpc_discipline(c: &mut Criterion) {
    c.bench_function("ablation/dpc_discipline", |b| {
        b.iter(|| std::hint::black_box(extras::ablate_dpc_discipline(MINUTES, SEED)))
    });
}

fn bench_pit_frequency(c: &mut Criterion) {
    c.bench_function("ablation/pit_frequency", |b| {
        b.iter(|| std::hint::black_box(extras::ablate_pit_frequency(MINUTES, SEED)))
    });
}

fn bench_quantum(c: &mut Criterion) {
    c.bench_function("ablation/quantum", |b| {
        b.iter(|| std::hint::black_box(extras::ablate_quantum(MINUTES, SEED)))
    });
}

fn bench_tail_family(c: &mut Criterion) {
    c.bench_function("ablation/tail_family", |b| {
        b.iter(|| std::hint::black_box(extras::ablate_tail_family(MINUTES, SEED)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dpc_discipline, bench_pit_frequency, bench_quantum,
              bench_tail_family
}
criterion_main!(benches);
