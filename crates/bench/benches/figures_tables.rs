//! Criterion benches that exercise every table/figure harness end to end
//! (at reduced durations). `cargo bench` therefore regenerates a miniature
//! of each artifact; the `repro` binary produces the full versions.

use criterion::{criterion_group, criterion_main, Criterion};
use wdm_bench::{
    cells::{measure_all, Duration, RunConfig},
    extras, figures, tables,
};

fn quick() -> RunConfig {
    RunConfig {
        duration: Duration::Minutes(0.05),
        seed: 1999,
        threads: 0,
        shards: 1,
        trace: false,
        compile: true,
        sampler_mode: wdm_osmodel::dist::SamplerMode::Exact,
        batch_record: true,
        blame: None,
        flame_hz: None,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("artifact/table1", |b| {
        b.iter(|| std::hint::black_box(tables::table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("artifact/table2", |b| {
        b.iter(|| std::hint::black_box(tables::table2()))
    });
}

fn bench_table3(c: &mut Criterion) {
    let cells = measure_all(&quick());
    c.bench_function("artifact/table3_render", |b| {
        b.iter(|| std::hint::black_box(tables::table3(&cells)))
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("artifact/table4", |b| {
        b.iter(|| std::hint::black_box(tables::table4(&quick())))
    });
}

fn bench_figure4(c: &mut Criterion) {
    let cells = measure_all(&quick());
    c.bench_function("artifact/figure4_render", |b| {
        b.iter(|| std::hint::black_box(figures::figure4(&cells)))
    });
}

fn bench_figure5(c: &mut Criterion) {
    c.bench_function("artifact/figure5", |b| {
        b.iter(|| {
            let f = figures::figure5(&quick());
            std::hint::black_box(figures::render_figure5(&f))
        })
    });
}

fn bench_figures_6_7(c: &mut Criterion) {
    let cells = measure_all(&quick());
    c.bench_function("artifact/figures_6_7_render", |b| {
        b.iter(|| std::hint::black_box(figures::figures_6_7(&cells)))
    });
}

fn bench_cell_measurement(c: &mut Criterion) {
    c.bench_function("artifact/measure_8_cells_3s_each", |b| {
        b.iter(|| std::hint::black_box(measure_all(&quick())))
    });
}

fn bench_throughput_sched(c: &mut Criterion) {
    let cells = measure_all(&quick());
    c.bench_function("artifact/throughput_and_sched_render", |b| {
        b.iter(|| {
            std::hint::black_box(extras::throughput(&cells));
            std::hint::black_box(extras::sched(&cells))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1, bench_table2, bench_table3, bench_table4,
              bench_figure4, bench_figure5, bench_figures_6_7,
              bench_cell_measurement, bench_throughput_sched
}
criterion_main!(benches);
