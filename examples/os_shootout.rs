//! The paper's headline experiment in miniature: the same WDM measurement
//! driver on Windows NT 4.0 and Windows 98 under the same stress load.
//!
//! Run with: `cargo run --release --example os_shootout [workload] [minutes]`
//! where workload is one of business|workstation|games|web (default games).

use wdm_repro::latency::report::{render_panel, PanelSeries};
use wdm_repro::latency::session::{measure_scenario, MeasureOptions};
use wdm_repro::osmodel::OsKind;
use wdm_repro::workloads::WorkloadKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = match args.get(1).map(String::as_str) {
        Some("business") => WorkloadKind::Business,
        Some("workstation") => WorkloadKind::Workstation,
        Some("web") => WorkloadKind::Web,
        _ => WorkloadKind::Games,
    };
    let minutes: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.0);
    println!(
        "{} on both OSs, {minutes} simulated minutes each\n",
        workload.name()
    );

    let hours = minutes / 60.0;
    let nt = measure_scenario(OsKind::Nt4, workload, 7, hours, &MeasureOptions::default());
    let w98 = measure_scenario(OsKind::Win98, workload, 7, hours, &MeasureOptions::default());

    println!(
        "{}",
        render_panel(
            "DPC interrupt latency (ms)",
            &[
                PanelSeries {
                    workload: "Windows NT 4.0",
                    hist: &nt.int_to_dpc.hist,
                },
                PanelSeries {
                    workload: "Windows 98",
                    hist: &w98.int_to_dpc.hist,
                },
            ],
        )
    );
    println!(
        "{}",
        render_panel(
            "RT-28 kernel thread latency (ms)",
            &[
                PanelSeries {
                    workload: "Windows NT 4.0",
                    hist: &nt.thread_lat_28.hist,
                },
                PanelSeries {
                    workload: "Windows 98",
                    hist: &w98.thread_lat_28.hist,
                },
            ],
        )
    );

    let nt_dpc = nt.int_to_dpc.hist.quantile_exceeding(0.0001);
    let nt_thr = nt.thread_lat_28.hist.quantile_exceeding(0.0001);
    let w98_dpc = w98.int_to_dpc.hist.quantile_exceeding(0.0001);
    let w98_thr = w98.thread_lat_28.hist.quantile_exceeding(0.0001);
    println!("p99.99 latencies (ms):");
    println!("                       NT 4.0     Win98    ratio");
    println!(
        "  DPC interrupt     {:>9.3} {:>9.3} {:>7.1}x",
        nt_dpc,
        w98_dpc,
        w98_dpc / nt_dpc.max(1e-9)
    );
    println!(
        "  RT-28 thread      {:>9.3} {:>9.3} {:>7.1}x",
        nt_thr,
        w98_thr,
        w98_thr / nt_thr.max(1e-9)
    );
    println!(
        "\nthroughput: NT {} ops vs 98 {} ops ({:+.1}%)",
        nt.ops_completed,
        w98.ops_completed,
        (nt.ops_completed as f64 - w98.ops_completed as f64) / w98.ops_completed as f64 * 100.0
    );
    println!(
        "\nThe paper's conclusion in one line: throughput is nearly identical,\n\
         but an NT high-RT-priority thread out-services even a Windows 98 DPC."
    );
}
