//! Quickstart: measure WDM latency distributions on a simulated machine.
//!
//! Builds the paper's measurement setup — a 1 kHz PIT timer whose DPC
//! signals real-time threads at priority 28 and 24 — on a Windows NT 4.0
//! personality under the Business Apps stress load, runs one simulated
//! minute, and prints the latency summary.
//!
//! Run with: `cargo run --release --example quickstart`

use wdm_repro::latency::report::summarize;
use wdm_repro::latency::session::{measure_scenario, MeasureOptions};
use wdm_repro::osmodel::OsKind;
use wdm_repro::workloads::WorkloadKind;

fn main() {
    let os = OsKind::Nt4;
    let workload = WorkloadKind::Business;
    let sim_minutes = 1.0;
    println!(
        "measuring {} under {} for {sim_minutes} simulated minute(s)...\n",
        os.name(),
        workload.name()
    );

    let m = measure_scenario(
        os,
        workload,
        42,
        sim_minutes / 60.0,
        &MeasureOptions::default(),
    );

    println!("{}", summarize(&m.int_to_isr));
    println!("{}", summarize(&m.int_to_dpc));
    println!("{}", summarize(&m.thread_lat_28));
    println!("{}", summarize(&m.thread_lat_24));
    println!();
    println!(
        "tool rounds completed: {} (driver-estimated int->DPC mean: {:.4} ms)",
        m.waits_28,
        m.tool_est_int_to_dpc.hist.mean_ms()
    );
    println!(
        "application throughput: {} ops in {:.1} s of simulated time",
        m.ops_completed,
        m.collected_hours * 3600.0
    );
    println!(
        "CPU breakdown: isr {:.1}%, dpc {:.1}%, thread {:.1}%, idle {:.1}%",
        pct(m.account.isr, &m),
        pct(m.account.dpc, &m),
        pct(m.account.thread, &m),
        pct(m.account.idle, &m),
    );
}

fn pct(part: u64, m: &wdm_repro::latency::session::ScenarioMeasurement) -> f64 {
    part as f64 / m.account.total() as f64 * 100.0
}
