//! The latency cause tool (paper §2.3, Table 4): find out *which code* was
//! running during long thread latencies — without OS source access.
//!
//! Reproduces the paper's investigation: Business apps on Windows 98 with
//! the default sound scheme enabled; episodes over the threshold dump the
//! IDT-hook circular buffer and are symbolized into module!function traces.
//!
//! Run with: `cargo run --release --example latency_cause [threshold_ms]`

use wdm_repro::latency::session::{measure_scenario, MeasureOptions};
use wdm_repro::osmodel::{OsKind, SoundScheme};
use wdm_repro::workloads::WorkloadKind;

fn main() {
    let threshold: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6.0);
    println!(
        "hunting for Windows 98 thread latencies over {threshold} ms\n\
         (Business apps, default sound scheme, 2 simulated minutes)\n"
    );
    let mut opts = MeasureOptions {
        cause_threshold_ms: Some(threshold),
        ..MeasureOptions::default()
    };
    opts.scenario.sound_scheme = SoundScheme::Default;

    let m = measure_scenario(
        OsKind::Win98,
        WorkloadKind::Business,
        23,
        2.0 / 60.0,
        &opts,
    );

    if m.episodes.is_empty() {
        println!("no episodes captured; lower the threshold or run longer");
        return;
    }
    for episode in m.episodes.iter().take(3) {
        println!("{episode}");
    }
    println!(
        "({} episodes total; the SYSAUDIO/KMIXER/VMM functions in the traces\n\
         are the sound scheme walking the audio topology and allocating\n\
         contiguous frames at raised IRQL — exactly the paper's Table 4.)",
        m.episodes.len()
    );
}
