//! The Figure 1/2 processing chain: ISR catches DMA, queues a DPC; the DPC
//! renders audio data and signals thread 1; thread 1 copies and signals
//! thread 2; thread 2 mixes/splits the streams.
//!
//! Measures every hop of the chain — interrupt latency, DPC latency,
//! thread latency and thread-to-thread context switch time — on both OSs,
//! exactly the decomposition of the paper's Figures 1 and 2.
//!
//! Run with: `cargo run --release --example audio_pipeline [minutes]`

use std::{cell::RefCell, rc::Rc};

use wdm_repro::osmodel::{OsKind, OsPersonality};
use wdm_repro::sim::prelude::*;

/// Timestamp slots for each hop of one pipeline round.
#[derive(Clone, Copy)]
struct Stamps {
    isr: Slot,
    dpc: Slot,
    t1: Slot,
}

struct ChainStats {
    rounds: u64,
    sum_dpc_us: f64,
    sum_t1_us: f64,
    sum_switch_us: f64,
    max_end_to_end_us: f64,
}

fn build(os: OsKind, seed: u64) -> (Kernel, Stamps, Rc<RefCell<ChainStats>>, VectorId) {
    let p = OsPersonality::of(os);
    let mut k = p.build_kernel(seed);
    let cpu = k.config().cpu_hz;
    let base = k.alloc_slots(3);
    let stamps = Stamps {
        isr: Slot(base.0),
        dpc: Slot(base.0 + 1),
        t1: Slot(base.0 + 2),
    };
    let e1 = k.create_event(EventKind::Synchronization, false);
    let e2 = k.create_event(EventKind::Synchronization, false);
    let isr_l = k.intern("AUDIODRV", "_DmaIsr");
    let dpc_l = k.intern("AUDIODRV", "_RenderDpc");
    let t1_l = k.intern("AUDIODRV", "_CopyThread");
    let t2_l = k.intern("KMIXER", "_MixThread");

    let stats = Rc::new(RefCell::new(ChainStats {
        rounds: 0,
        sum_dpc_us: 0.0,
        sum_t1_us: 0.0,
        sum_switch_us: 0.0,
        max_end_to_end_us: 0.0,
    }));

    // DPC: render audio data, stamp, signal thread 1 (Figure 2).
    let dpc = k.create_dpc(
        "render",
        DpcImportance::Medium,
        Box::new(OpSeq::new(vec![
            Step::ReadTsc(stamps.dpc),
            Step::Busy {
                cycles: Cycles::from_us(120.0),
                label: dpc_l,
            },
            Step::SetEvent(e1),
            Step::Return,
        ])),
    );
    // ISR: catch DMA, stamp, queue DPC (Figure 1).
    let vector = k.install_vector(
        "audio-dma",
        Irql(12),
        Box::new(OpSeq::new(vec![
            Step::ReadTsc(stamps.isr),
            Step::Busy {
                cycles: Cycles::from_us(6.0),
                label: isr_l,
            },
            Step::QueueDpc(dpc),
            Step::Return,
        ])),
    );
    // Thread 1: read DMA, copy data to buffer, signal thread 2.
    let _t1 = k.create_thread(
        "copy-thread",
        26,
        Box::new(LoopSeq::new(vec![
            Step::Wait(WaitObject::Event(e1)),
            Step::ReadTsc(stamps.t1),
            Step::Busy {
                cycles: Cycles::from_us(150.0),
                label: t1_l,
            },
            Step::SetEvent(e2),
        ])),
    );
    // Thread 2: read buffer, mix or split data streams; computes the hop
    // latencies for the completed round.
    struct Mixer {
        stamps: Stamps,
        stats: Rc<RefCell<ChainStats>>,
        e2: EventId,
        label: Label,
        cpu_hz: u64,
        phase: u8,
    }
    impl Program for Mixer {
        fn step(&mut self, ctx: &mut StepCtx<'_>) -> Step {
            match self.phase {
                0 => {
                    self.phase = 1;
                    Step::Wait(WaitObject::Event(self.e2))
                }
                _ => {
                    self.phase = 0;
                    let us =
                        |c: u64| wdm_repro::sim::time::Cycles(c).as_ms_at(self.cpu_hz) * 1000.0;
                    let isr = ctx.board.read(self.stamps.isr);
                    let dpc = ctx.board.read(self.stamps.dpc);
                    let t1 = ctx.board.read(self.stamps.t1);
                    let now = ctx.now.0;
                    let mut s = self.stats.borrow_mut();
                    s.rounds += 1;
                    s.sum_dpc_us += us(dpc.saturating_sub(isr));
                    s.sum_t1_us += us(t1.saturating_sub(dpc));
                    s.sum_switch_us += us(now.saturating_sub(t1));
                    let e2e = us(now.saturating_sub(isr));
                    if e2e > s.max_end_to_end_us {
                        s.max_end_to_end_us = e2e;
                    }
                    Step::Busy {
                        cycles: Cycles::from_us(80.0),
                        label: self.label,
                    }
                }
            }
        }
    }
    let _t2 = k.create_thread(
        "mix-thread",
        26,
        Box::new(Mixer {
            stamps,
            stats: stats.clone(),
            e2,
            label: t2_l,
            cpu_hz: cpu,
            phase: 0,
        }),
    );
    // DMA buffer completes every 10 ms (a 10 ms audio period).
    k.add_env_source(EnvSource::new(
        "dma-period",
        samplers::fixed(Cycles::from_ms_at(10.0, cpu)),
        EnvAction::AssertInterrupt(vector),
    ));
    (k, stamps, stats, vector)
}

fn main() {
    let minutes: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!(
        "audio pipeline (Figure 1/2 chain): ISR -> DPC -> copy thread -> mix\n\
         thread, 10 ms DMA period, {minutes} simulated minute(s) per OS\n"
    );
    println!(
        "{:<22}{:>9}{:>14}{:>14}{:>16}{:>16}",
        "OS", "rounds", "ISR->DPC", "DPC->thr1", "thr1->thr2 sw", "max end-to-end"
    );
    for os in OsKind::ALL {
        let (mut k, _stamps, stats, _v) = build(os, 42);
        k.run_for(wdm_repro::sim::time::Cycles::from_ms_at(
            minutes * 60_000.0,
            k.config().cpu_hz,
        ));
        let s = stats.borrow();
        let n = s.rounds.max(1) as f64;
        println!(
            "{:<22}{:>9}{:>11.1} us{:>11.1} us{:>13.1} us{:>13.1} us",
            os.name(),
            s.rounds,
            s.sum_dpc_us / n,
            s.sum_t1_us / n,
            s.sum_switch_us / n,
            s.max_end_to_end_us
        );
    }
    println!(
        "\nThe 'thr1 -> thr2' column is the paper's thread context switch\n\
         time (Figure 1): the handoff between two cooperating threads,\n\
         including the switch itself."
    );
}
