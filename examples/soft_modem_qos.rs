//! Soft modem quality of service (paper §5.1, Figures 6–7).
//!
//! Computes the mean time to buffer underrun for a soft modem datapump as a
//! function of buffering, then cross-validates one point against a direct
//! simulation of the datapump (paper §6.1).
//!
//! Run with: `cargo run --release --example soft_modem_qos [minutes]`

use wdm_repro::analysis::mttf::{fig6_axis, mttf_seconds, MttfParams};
use wdm_repro::latency::session::{measure_scenario, MeasureOptions};
use wdm_repro::osmodel::OsKind;
use wdm_repro::softmodem::{validate_mttf, Modality};
use wdm_repro::workloads::WorkloadKind;

fn main() {
    let minutes: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5.0);
    let hours = minutes / 60.0;
    let workload = WorkloadKind::Games;
    println!(
        "soft modem QoS on Windows 98 while playing 3D games\n\
         (datapump = 25% of a cycle; {minutes} simulated minutes of data)\n"
    );

    let m = measure_scenario(
        OsKind::Win98,
        workload,
        11,
        hours,
        &MeasureOptions::default(),
    );
    let params = MttfParams::default();

    println!("buffering ms    DPC-based MTTF      thread-based MTTF");
    for b in fig6_axis() {
        let dpc = mttf_seconds(&m.int_to_dpc.hist, b, &params);
        let thr = mttf_seconds(&m.thread_int_28.hist, b, &params);
        let f = |x: f64| {
            if x.is_infinite() {
                ">10000 s".to_string()
            } else {
                format!("{x:>7.1} s")
            }
        };
        println!("{b:<15} {:>15} {:>22}", f(dpc), f(thr));
    }

    println!("\ncross-validation at 12 ms of buffering (direct datapump simulation):");
    for modality in [Modality::Dpc, Modality::Thread(28)] {
        let v = validate_mttf(OsKind::Win98, workload, modality, 12.0, 11, hours);
        println!(
            "  {:<11} predicted {:>9} observed {:>9} ({} misses / {} buffers)",
            match modality {
                Modality::Dpc => "DPC:",
                Modality::Thread(_) => "thread@28:",
            },
            fmt_s(v.predicted_mttf_s),
            fmt_s(v.observed_mttf_s),
            v.misses,
            v.processed
        );
    }
    use wdm_repro::analysis::mttf::buffering_for_mttf;
    let hour_dpc = buffering_for_mttf(&m.int_to_dpc.hist, &fig6_axis(), &params, 3600.0);
    let hour_thr = buffering_for_mttf(&m.thread_int_28.hist, &fig6_axis(), &params, 3600.0);
    let fmt_b = |b: Option<f64>| {
        b.map(|x| format!("{x} ms")).unwrap_or_else(|| ">64 ms".into())
    };
    println!(
        "\nReading the curves like the paper's §5.1: an hour between misses\n\
         during games needs {} of buffering DPC-based and {} thread-based\n\
         (the paper reads ~20 ms and ~48 ms off its Figures 6-7).",
        fmt_b(hour_dpc),
        fmt_b(hour_thr)
    );
}

fn fmt_s(x: f64) -> String {
    if x.is_infinite() {
        ">horizon".into()
    } else {
        format!("{x:.1} s")
    }
}
