//! Integration tests asserting the paper's headline claims hold on the
//! simulated reproduction (shape, not absolute numbers).
//!
//! Each test runs real OS x workload cells through the measurement session;
//! durations are kept short enough for debug-mode CI.

use wdm_repro::latency::session::{measure_scenario, MeasureOptions, ScenarioMeasurement};
use wdm_repro::osmodel::OsKind;
use wdm_repro::workloads::WorkloadKind;

fn cell(os: OsKind, w: WorkloadKind, minutes: f64) -> ScenarioMeasurement {
    measure_scenario(os, w, 4242, minutes / 60.0, &MeasureOptions::default())
}

/// §4.2: "NT 4.0 exhibits latency performance at least an order of
/// magnitude superior to that of Windows 98" — thread latency tails.
#[test]
fn nt_thread_latency_an_order_better_than_win98() {
    for w in [WorkloadKind::Business, WorkloadKind::Games] {
        let nt = cell(OsKind::Nt4, w, 1.5);
        let w98 = cell(OsKind::Win98, w, 1.5);
        let nt_tail = nt.thread_lat_28.hist.quantile_exceeding(0.0005);
        let w98_tail = w98.thread_lat_28.hist.quantile_exceeding(0.0005);
        assert!(
            w98_tail >= nt_tail * 8.0,
            "{}: Win98 RT-28 tail {w98_tail:.3} ms should be ~an order above \
             NT's {nt_tail:.3} ms",
            w.name()
        );
    }
}

/// §4.2: "For NT 4.0 there is almost no distinction between DPC latencies
/// and thread latencies for threads at high real-time priority."
#[test]
fn nt_rt28_threads_service_like_dpcs() {
    let m = cell(OsKind::Nt4, WorkloadKind::Workstation, 1.5);
    let dpc_tail = m.int_to_dpc.hist.quantile_exceeding(0.001);
    let thr_tail = m.thread_int_28.hist.quantile_exceeding(0.001);
    assert!(
        thr_tail <= dpc_tail * 3.0 + 0.2,
        "NT RT-28 thread ({thr_tail:.3} ms) must track DPC service ({dpc_tail:.3} ms)"
    );
}

/// §4.2: the kernel work-item queue is serviced by a default-RT-priority
/// thread, so NT priority-24 threads see far worse service than 28.
#[test]
fn nt_rt24_an_order_worse_than_rt28() {
    let m = cell(OsKind::Nt4, WorkloadKind::Business, 2.0);
    let t28 = m.thread_lat_28.hist.quantile_exceeding(0.001);
    let t24 = m.thread_lat_24.hist.quantile_exceeding(0.001);
    assert!(
        t24 >= t28 * 4.0,
        "NT RT-24 tail {t24:.3} ms should be far above RT-28's {t28:.3} ms"
    );
}

/// §4.2 (Figure 4): on Windows 98 both real-time priorities are blocked by
/// the same non-preemptible sections, so 24 and 28 look alike.
#[test]
fn win98_rt24_and_rt28_look_alike() {
    let m = cell(OsKind::Win98, WorkloadKind::Web, 1.5);
    let t28 = m.thread_lat_28.hist.quantile_exceeding(0.002);
    let t24 = m.thread_lat_24.hist.quantile_exceeding(0.002);
    let ratio = (t24 / t28).max(t28 / t24);
    assert!(
        ratio < 2.0,
        "Win98 RT-24 ({t24:.3} ms) and RT-28 ({t28:.3} ms) should be similar"
    );
}

/// §4.2: on Windows 98, DPCs get an order of magnitude better worst-case
/// service than real-time threads.
#[test]
fn win98_dpcs_beat_win98_threads() {
    let m = cell(OsKind::Win98, WorkloadKind::Games, 1.5);
    let dpc = m.int_to_dpc.hist.quantile_exceeding(0.0005);
    let thr = m.thread_int_28.hist.quantile_exceeding(0.0005);
    assert!(
        thr >= dpc * 3.0,
        "Win98 thread tail {thr:.3} ms must dominate DPC tail {dpc:.3} ms"
    );
}

/// §4.2: throughput metrics barely distinguish the OSs (<= ~20% delta on
/// the office benchmark) even though latency differs by orders.
#[test]
fn throughput_deltas_are_small_where_latency_is_not() {
    for w in [WorkloadKind::Business, WorkloadKind::Workstation] {
        let nt = cell(OsKind::Nt4, w, 1.0);
        let w98 = cell(OsKind::Win98, w, 1.0);
        let delta = (nt.ops_completed as f64 - w98.ops_completed as f64).abs()
            / nt.ops_completed.max(w98.ops_completed) as f64;
        assert!(
            delta < 0.25,
            "{}: throughput delta {:.0}% too large",
            w.name(),
            delta * 100.0
        );
    }
}

/// §4.1/§2.1: the latency hierarchy is internally consistent within any
/// single cell: interrupt <= interrupt+DPC <= interrupt+DPC+thread (on
/// tail quantiles).
#[test]
fn latency_chain_is_internally_consistent() {
    for os in OsKind::ALL {
        let m = cell(os, WorkloadKind::Workstation, 1.0);
        let isr = m.int_to_isr.hist.mean_ms();
        let dpc = m.int_to_dpc.hist.mean_ms();
        let thr = m.thread_int_28.hist.mean_ms();
        assert!(
            isr <= dpc + 1e-6 && dpc <= thr + 1e-6,
            "{}: chain means must be ordered: isr {isr}, dpc {dpc}, thread {thr}",
            os.name()
        );
    }
}

/// §3.1 usage models feed Table 3: hourly <= daily <= weekly everywhere.
#[test]
fn worst_cases_are_monotone_across_horizons() {
    use wdm_repro::latency::worstcase::worst_cases;
    let m = cell(OsKind::Win98, WorkloadKind::Business, 2.0);
    let (h, d, w) = m.usage.windows();
    for series in [&m.int_to_isr, &m.int_to_dpc, &m.thread_int_28] {
        let wc = worst_cases(series, m.collected_hours, h, d, w);
        assert!(wc.hourly <= wc.daily + 1e-9, "{}", series.name);
        assert!(wc.daily <= wc.weekly + 1e-9, "{}", series.name);
    }
}

/// The measurement tool itself: the driver-computed (ASB) thread latency
/// must agree with the simulator's ground truth.
#[test]
fn driver_samples_agree_with_ground_truth() {
    let m = cell(OsKind::Nt4, WorkloadKind::Business, 1.0);
    let tool = m.tool_dpc_to_thread_28.hist.mean_ms();
    let truth = m.thread_lat_28.hist.mean_ms();
    // ASB[2]-ASB[1] includes the DPC body's SetEvent call; both are means
    // over thousands of rounds.
    assert!(
        (tool - truth).abs() < 0.05,
        "driver mean {tool:.4} ms vs truth mean {truth:.4} ms"
    );
}

/// The paper's timestamp-estimation method (ASB[0] + delay) is within one
/// PIT period of the truth, as §2.2 argues.
#[test]
fn estimation_error_is_bounded_by_one_tick() {
    let m = cell(OsKind::Nt4, WorkloadKind::Business, 1.0);
    let est = m.tool_est_int_to_dpc.hist.mean_ms();
    let exact = m.int_to_dpc.hist.mean_ms();
    assert!(
        (est - exact).abs() <= 1.0,
        "estimated mean {est:.4} ms vs exact {exact:.4} ms must differ < 1 tick"
    );
}
