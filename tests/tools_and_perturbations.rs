//! Integration tests for the measurement tooling and perturbation modules:
//! the cause tool (Table 4), the virus scanner (Figure 5), the soft modem
//! datapump, and the scenario composition surface.

use wdm_repro::latency::session::{measure_scenario, MeasureOptions};
use wdm_repro::osmodel::{OsKind, SoundScheme};
use wdm_repro::sim::time::Cycles;
use wdm_repro::softmodem::{Datapump, Modality};
use wdm_repro::workloads::{build_scenario, ScenarioOptions, WorkloadKind};

/// Table 4: with the default sound scheme on Windows 98, the cause tool
/// captures episodes naming the audio/VMM functions.
#[test]
fn cause_tool_blames_sound_scheme_functions() {
    let mut opts = MeasureOptions {
        cause_threshold_ms: Some(6.0),
        ..MeasureOptions::default()
    };
    opts.scenario.sound_scheme = SoundScheme::Default;
    let m = measure_scenario(
        OsKind::Win98,
        WorkloadKind::Business,
        77,
        2.0 / 60.0,
        &opts,
    );
    assert!(
        !m.episodes.is_empty(),
        "the default sound scheme must cause >6 ms episodes"
    );
    let all = m.episodes.join("\n");
    assert!(
        all.contains("SYSAUDIO") || all.contains("KMIXER") || all.contains("VMM"),
        "episodes must name audio-path modules:\n{all}"
    );
    assert!(all.contains("total samples in episode"));
}

/// Figure 5: the virus scanner makes 16 ms thread latencies at least an
/// order of magnitude more frequent.
#[test]
fn virus_scanner_separates_by_orders_of_magnitude() {
    let hours = 3.0 / 60.0;
    let base = measure_scenario(
        OsKind::Win98,
        WorkloadKind::Business,
        55,
        hours,
        &MeasureOptions::default(),
    );
    let mut opts = MeasureOptions::default();
    opts.scenario.virus_scanner = true;
    let scanned = measure_scenario(OsKind::Win98, WorkloadKind::Business, 55, hours, &opts);
    let p_base = base.thread_lat_24.hist.survival(16.0);
    let p_scan = scanned.thread_lat_24.hist.survival(16.0);
    assert!(
        p_scan > 1e-4,
        "scanner should push 16 ms latencies into view: {p_scan:.2e}"
    );
    assert!(
        p_scan > p_base * 10.0,
        "separation too small: {p_scan:.2e} vs {p_base:.2e}"
    );
}

/// §5.1: on NT the modem datapump never underruns at modem buffer sizes,
/// in either modality, even under the games load.
#[test]
fn nt_softmodem_is_clean_in_both_modalities() {
    for modality in [Modality::Dpc, Modality::Thread(28)] {
        let mut s = build_scenario(
            OsKind::Nt4,
            WorkloadKind::Games,
            13,
            &ScenarioOptions::default(),
        );
        let cpu = s.kernel.config().cpu_hz;
        let pump = Datapump::install(
            &mut s.kernel,
            modality,
            Cycles::from_ms_at(8.0, cpu),
            Cycles::from_ms_at(2.0, cpu),
            Cycles::from_ms_at(8.0, cpu),
        );
        s.kernel.run_for(Cycles::from_ms_at(60_000.0, cpu));
        let st = pump.state.borrow();
        assert!(st.completed > 5_000, "pump must run: {}", st.completed);
        assert_eq!(
            st.missed,
            0,
            "NT worst cases sit below modem slack (modality {modality:?})"
        );
    }
}

/// On Windows 98 the same thread-based datapump with thin buffering does
/// underrun under games — the motivating contrast of §5.1.
#[test]
fn win98_thread_softmodem_underruns_under_games() {
    let mut s = build_scenario(
        OsKind::Win98,
        WorkloadKind::Games,
        13,
        &ScenarioOptions::default(),
    );
    let cpu = s.kernel.config().cpu_hz;
    let pump = Datapump::install(
        &mut s.kernel,
        Modality::Thread(28),
        Cycles::from_ms_at(8.0, cpu),
        Cycles::from_ms_at(2.0, cpu),
        Cycles::from_ms_at(8.0, cpu),
    );
    s.kernel.run_for(Cycles::from_ms_at(120_000.0, cpu));
    let st = pump.state.borrow();
    assert!(
        st.missed > 0,
        "8 ms buffering on 98 under games should underrun ({} done)",
        st.completed
    );
}

/// Scenario surface: toggling the scanner mid-run changes injection.
#[test]
fn scanner_toggle_mid_run() {
    let opts = ScenarioOptions {
        virus_scanner: true,
        sound_scheme: SoundScheme::None,
        ..ScenarioOptions::default()
    };
    let mut s = build_scenario(OsKind::Win98, WorkloadKind::Business, 3, &opts);
    let vs = s.virus_scanner.expect("installed");
    s.kernel.run_for(Cycles::from_ms(5_000.0));
    let fires_on = s.kernel.env_source(vs.source).fire_count;
    vs.set_enabled(&mut s.kernel, false);
    s.kernel.run_for(Cycles::from_ms(5_000.0));
    let fires_after = s.kernel.env_source(vs.source).fire_count;
    assert!(fires_on > 0);
    assert_eq!(fires_on, fires_after, "disabled scanner must stop firing");
}

/// Every OS x workload cell runs and produces well-formed measurements.
#[test]
fn all_cells_produce_well_formed_measurements() {
    for os in OsKind::ALL {
        for w in WorkloadKind::ALL {
            let m = measure_scenario(os, w, 9, 0.5 / 60.0, &MeasureOptions::default());
            assert!(
                m.int_to_isr_all_ticks.hist.count() > 10_000,
                "{} {}",
                os.name(),
                w.name()
            );
            assert!(m.int_to_isr.hist.count() > 1_000, "{} {}", os.name(), w.name());
            assert!(m.thread_lat_28.hist.count() > 1_000);
            assert!(m.thread_lat_24.hist.count() > 1_000);
            assert!(m.account.total() > 0);
            assert!(m.ops_completed > 0);
            // Latencies are finite and positive.
            assert!(m.int_to_dpc.hist.max_ms() < 1_000.0);
            assert!(m.thread_int_28.hist.min_ms() >= 0.0);
        }
    }
}
