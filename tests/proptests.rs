//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use wdm_repro::analysis::mttf::{mttf_seconds, MttfParams};
use wdm_repro::analysis::sched::{response_time_analysis, PeriodicTask};
use wdm_repro::latency::histogram::LatencyHistogram;
use wdm_repro::latency::worstcase::BlockMaxima;
use wdm_repro::osmodel::Dist;
use wdm_repro::sim::prelude::*;

proptest! {
    /// Histogram: counts are conserved and percents sum to 100.
    #[test]
    fn histogram_conserves_mass(samples in prop::collection::vec(0.0f64..500.0, 1..500)) {
        let mut h = LatencyHistogram::fig4();
        for &s in &samples {
            h.record_ms(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), samples.len() as u64);
        let total: f64 = h.percents().iter().sum();
        prop_assert!((total - 100.0).abs() < 1e-6);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        prop_assert!((h.max_ms() - max).abs() < 1e-12);
    }

    /// Histogram: survival is a monotone non-increasing function in [0, 1].
    #[test]
    fn survival_is_monotone(
        samples in prop::collection::vec(0.001f64..200.0, 2..400),
        probes in prop::collection::vec(0.0f64..250.0, 2..20),
    ) {
        let mut h = LatencyHistogram::fig4();
        for &s in &samples {
            h.record_ms(s);
        }
        let mut probes = probes;
        probes.sort_by(f64::total_cmp);
        let mut prev = 1.0;
        for &p in &probes {
            let s = h.survival(p);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-9, "survival({p}) = {s} rose above {prev}");
            prev = s;
        }
    }

    /// Histogram: quantiles stay within the observed sample range.
    #[test]
    fn quantiles_stay_in_range(
        samples in prop::collection::vec(0.001f64..200.0, 2..400),
        p in 0.0001f64..0.9,
    ) {
        let mut h = LatencyHistogram::fig4();
        for &s in &samples {
            h.record_ms(s);
        }
        let q = h.quantile_exceeding(p);
        prop_assert!(q <= h.max_ms() + 1e-9, "quantile {q} above max {}", h.max_ms());
        prop_assert!(q >= 0.0);
    }

    /// Block maxima: the mean of window maxima never exceeds the global max
    /// and never falls below the mean of block values used.
    #[test]
    fn block_maxima_bounded(values in prop::collection::vec(0.0f64..100.0, 10..200)) {
        let mut b = BlockMaxima::new(Cycles(100));
        for (i, &v) in values.iter().enumerate() {
            b.record(Instant(i as u64 * 100 + 50), v);
        }
        // Close the last block.
        b.record(Instant(values.len() as u64 * 100 + 50), 0.0);
        let global_max = values.iter().cloned().fold(0.0, f64::max);
        for k in 1..=3usize {
            if let Some(m) = b.expected_max_over(k) {
                prop_assert!(m <= global_max + 1e-9);
                prop_assert!(m >= 0.0);
            }
        }
    }

    /// Distributions: samples respect their caps and bounds.
    #[test]
    fn dist_samples_respect_bounds(
        seed in 0u64..1000,
        median in 0.01f64..5.0,
        sigma in 0.1f64..2.0,
    ) {
        use rand::SeedableRng;
        let cap = median * 20.0;
        let d = Dist::LogNormal { median, sigma, cap };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x > 0.0 && x <= cap);
        }
        let p = Dist::ParetoBounded { xmin: median, alpha: 1.3, cap };
        for _ in 0..200 {
            let x = p.sample(&mut rng);
            prop_assert!(x >= median * 0.999 && x <= cap * 1.001);
        }
    }

    /// MTTF: monotone non-decreasing in buffering.
    #[test]
    fn mttf_monotone_in_buffering(samples in prop::collection::vec(0.01f64..40.0, 50..300)) {
        let mut h = LatencyHistogram::fig4();
        for &s in &samples {
            h.record_ms(s);
        }
        let params = MttfParams::default();
        let mut prev = 0.0f64;
        for b in [4.0, 8.0, 16.0, 32.0, 64.0] {
            let m = mttf_seconds(&h, b, &params);
            prop_assert!(m >= prev || m.is_infinite(), "MTTF fell at {b} ms");
            if m.is_infinite() {
                break;
            }
            prev = m;
        }
    }

    /// Response-time analysis: response >= compute + blocking for every
    /// schedulable task, and adding blocking never helps.
    #[test]
    fn response_times_sane(
        t1 in 5.0f64..50.0,
        c1 in 0.5f64..4.0,
        t2 in 50.0f64..200.0,
        c2 in 1.0f64..20.0,
        blocking in 0.0f64..5.0,
    ) {
        let tasks = vec![
            PeriodicTask::new("a", t1, c1.min(t1 * 0.8)),
            PeriodicTask::new("b", t2, c2.min(t2 * 0.5)),
        ];
        let rs = response_time_analysis(&tasks, blocking);
        for r in &rs {
            if let Some(resp) = r.response_ms {
                prop_assert!(resp + 1e-9 >= r.task.compute_ms + blocking);
            }
        }
        let rs0 = response_time_analysis(&tasks, 0.0);
        for (with, without) in rs.iter().zip(&rs0) {
            if let (Some(a), Some(b)) = (with.response_ms, without.response_ms) {
                prop_assert!(a + 1e-9 >= b, "blocking reduced response time");
            }
        }
    }

    /// Kernel: cycle accounting is conserved for arbitrary small loads.
    #[test]
    fn kernel_accounting_conserved(
        seed in 0u64..500,
        burst_us in 50.0f64..2000.0,
        rate_ms in 0.5f64..5.0,
    ) {
        let cfg = KernelConfig {
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let l = k.intern("T", "_Spin");
        let _t = k.create_thread(
            "spin",
            10,
            Box::new(LoopSeq::new(vec![
                Step::Busy { cycles: Cycles::from_us(burst_us), label: l },
                Step::Sleep(Cycles::from_ms(1.0)),
            ])),
        );
        let dpc = k.create_dpc(
            "d",
            DpcImportance::Medium,
            Box::new(OpSeq::new(vec![
                Step::Busy { cycles: Cycles::from_us(100.0), label: l },
                Step::Return,
            ])),
        );
        let v = k.install_vector(
            "dev",
            Irql(12),
            Box::new(OpSeq::new(vec![Step::QueueDpc(dpc), Step::Return])),
        );
        k.add_env_source(EnvSource::new(
            "arrivals",
            samplers::fixed(Cycles::from_ms(rate_ms)),
            EnvAction::AssertInterrupt(v),
        ));
        k.run_for(Cycles::from_ms(50.0));
        prop_assert_eq!(k.account.total(), k.now().0);
    }

    /// Kernel fuzz: random (valid) thread programs, devices and
    /// environment sources never panic, never stall time and always
    /// conserve cycle accounting.
    #[test]
    fn kernel_survives_random_programs(
        seed in 0u64..10_000,
        ops in prop::collection::vec((0u8..8, 1u64..3_000), 2..20),
        dev_rate_ms in 0.2f64..4.0,
        cli_every_ms in 1.0f64..10.0,
        n_threads in 1usize..4,
    ) {
        let cfg = KernelConfig {
            seed,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let l = k.intern("FUZZ", "_Op");
        let evt = k.create_event(EventKind::Synchronization, false);
        let sem = k.create_semaphore(0, 64);
        let dpc = k.create_dpc(
            "fuzz-dpc",
            DpcImportance::Medium,
            Box::new(OpSeq::new(vec![
                Step::Busy { cycles: Cycles::from_us(40.0), label: l },
                Step::SetEvent(evt),
                Step::Return,
            ])),
        );
        // Translate opcodes into a valid thread-step program.
        let steps: Vec<Step> = ops
            .iter()
            .map(|&(code, arg)| match code {
                0 => Step::Busy { cycles: Cycles(arg * 100 + 1), label: l },
                1 => Step::BusyCli { cycles: Cycles(arg * 20 + 1), label: l },
                2 => Step::Sleep(Cycles::from_us((arg % 2_000 + 10) as f64)),
                3 => Step::WaitTimeout(
                    WaitObject::Event(evt),
                    Cycles::from_ms(((arg % 4) + 1) as f64),
                ),
                4 => Step::Yield,
                5 => Step::SetEvent(evt),
                6 => Step::ReleaseSemaphore(sem, (arg % 3 + 1) as u32),
                _ => Step::QueueDpc(dpc),
            })
            .collect();
        for i in 0..n_threads {
            let prio = 4 + ((seed as usize + i) % 20) as u8; // 4..=23
            k.create_thread(
                &format!("fuzz-{i}"),
                prio,
                Box::new(LoopSeq::new(steps.clone())),
            );
        }
        let v = k.install_vector(
            "fuzz-dev",
            Irql(11),
            Box::new(OpSeq::new(vec![
                Step::Busy { cycles: Cycles::from_us(15.0), label: l },
                Step::QueueDpc(dpc),
                Step::Return,
            ])),
        );
        k.add_env_source(EnvSource::new(
            "fuzz-arrivals",
            samplers::fixed(Cycles::from_ms(dev_rate_ms)),
            EnvAction::AssertInterrupt(v),
        ));
        k.add_env_source(EnvSource::new(
            "fuzz-cli",
            samplers::fixed(Cycles::from_ms(cli_every_ms)),
            EnvAction::Cli {
                duration: samplers::fixed(Cycles::from_us(200.0)),
                label: l,
            },
        ));
        let horizon = Cycles::from_ms(40.0);
        k.run_for(horizon);
        prop_assert_eq!(k.now().0, horizon.0, "time must reach the horizon");
        prop_assert_eq!(k.account.total(), k.now().0, "accounting conserved");
    }

    /// Kernel: same seed, same result; event count deterministic.
    #[test]
    fn kernel_deterministic(seed in 0u64..200) {
        let run = || {
            let cfg = KernelConfig {
                seed,
                ..KernelConfig::default()
            };
            let mut k = Kernel::new(cfg);
            let l = k.intern("T", "_W");
            let _t = k.create_thread(
                "w",
                10,
                Box::new(LoopSeq::new(vec![
                    Step::Busy { cycles: Cycles::from_us(300.0), label: l },
                    Step::Sleep(Cycles::from_ms(2.0)),
                ])),
            );
            k.run_for(Cycles::from_ms(20.0));
            (k.account, k.context_switches)
        };
        prop_assert_eq!(run(), run());
    }
}
