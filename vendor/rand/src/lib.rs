#![warn(missing_docs)]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`] seeding
//! entry point and the [`Rng`] extension trait with `gen_range` over the
//! integer and float range types the simulator samples from.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha-based `StdRng`, which is fine here:
//! the workspace only requires determinism for a fixed seed, not bit
//! compatibility with upstream.

/// Core generator trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over a [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A half-open or inclusive range values can be sampled from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Maps a `u64` to a double in `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a `u64` to a double in `[0, 1]`.
fn unit_f64_inclusive(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;

    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = unit_f64(rng.next_u64());
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding landing exactly on the excluded end.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "inverted f64 sample range");
        let u = unit_f64_inclusive(rng.next_u64());
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64, minus one.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "inverted integer sample range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(2.5f64..=3.5);
            assert!((2.5..=3.5).contains(&y));
            let z = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(z > 0.0 && z < 1.0);
        }
    }

    #[test]
    fn int_ranges_respect_bounds_and_cover() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let x = r.gen_range(10u64..=15);
            assert!((10..=15).contains(&x));
            seen[(x - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..1_000 {
            let x = r.gen_range(0u8..40);
            assert!(x < 40);
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
