#![warn(missing_docs)]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Differences from upstream, deliberately accepted: no statistical analysis,
//! outlier detection, plots or saved baselines. Each bench runs a short
//! warm-up, then `sample_size` timed samples, and prints the per-iteration
//! minimum / median / mean to stdout. That is enough to compare hot-path
//! costs across commits by eye, which is all this workspace needs.

use std::time::{Duration, Instant};

/// Re-export so benches can `criterion::black_box` if they prefer.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs one setup per
/// routine invocation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs sized per routine call.
    PerIteration,
}

/// The timing harness handed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each bench collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up period run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Collects timed samples for one benchmark routine.
pub struct Bencher {
    /// Per-iteration durations in nanoseconds.
    samples: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
}

impl Bencher {
    /// Times `routine`, running it repeatedly per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and pick an iteration count targeting ~10ms per sample.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let iters = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up once so lazy initialisation doesn't pollute the samples.
        let warm_until = Instant::now() + self.warm_up.min(Duration::from_millis(50));
        loop {
            let input = setup();
            black_box(routine(input));
            if Instant::now() >= warm_until {
                break;
            }
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&mut self, name: &str) {
        assert!(
            !self.samples.is_empty(),
            "bench {name} never called iter/iter_batched"
        );
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean: f64 = self.samples.iter().sum::<f64>() / self.samples.len() as f64;
        println!(
            "{name:<44} min {:>12} median {:>12} mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a bench group: a shared `Criterion` config plus target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running each group (benches use `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("test/iter", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("test/iter_batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }

    criterion_group! {
        name = group_smoke;
        config = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.bench_function("test/group", |b| b.iter(|| black_box(2u32 * 2)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        group_smoke();
    }
}
