//! Value-generation strategies (no shrinking).

use rand::{rngs::StdRng, Rng, SampleRange};

/// Generates values of one type from a deterministic stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies.
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a choice from at least one option.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// Ranges of any sampleable primitive are strategies.
impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $ix:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniformly random booleans (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

/// The boolean strategy instance.
pub const ANY: AnyBool = AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

/// `Vec` strategy over an element strategy and a half-open size range.
pub struct VecStrategy<S> {
    elem: S,
    size: core::ops::Range<usize>,
}

/// Builds a [`VecStrategy`] (`prop::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
