#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, range/tuple/`Just`/`prop_map`/`prop_oneof!`
//! strategies, `prop::collection::vec` and `prop::bool::ANY`, plus the
//! `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` unavailable; rerun with `PROPTEST_CASES` and the fixed
//!   deterministic stream to reproduce.
//! - **Deterministic by construction.** Each test function derives its RNG
//!   stream from the test name and case index, so failures are stable
//!   across runs and machines.
//! - Case count defaults to 64 (override with `PROPTEST_CASES`).

use rand::{rngs::StdRng, SeedableRng};

pub mod strategy;

/// Builds the deterministic generator for one test case.
pub fn test_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
}

/// Number of cases to run per property (env `PROPTEST_CASES`, default 64).
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// The `prop` path exposed by the prelude (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }

    /// Boolean strategies.
    pub mod bool {
        pub use crate::strategy::{AnyBool, ANY};
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each `arg in strategy` binding is generated
/// fresh per case; the body runs [`case_count()`] times.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::case_count();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_rng(stringify!($name), __case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Op {
        A(u8),
        B,
    }

    proptest! {
        /// The macro wires up bindings, ranges, tuples, maps and oneof.
        #[test]
        fn macro_generates_all_strategy_shapes(
            x in 0u8..40,
            y in 1u8..=31,
            v in prop::collection::vec((0usize..12, prop::bool::ANY), 1..60),
            f in 0.5f64..2.0,
            op in prop_oneof![
                (0u8..10).prop_map(Op::A),
                Just(Op::B),
            ],
        ) {
            prop_assert!(x < 40);
            prop_assert!((1..=31).contains(&y));
            prop_assert!(!v.is_empty() && v.len() < 60);
            for &(n, _b) in &v {
                prop_assert!(n < 12);
            }
            prop_assert!((0.5..2.0).contains(&f));
            match op {
                Op::A(n) => prop_assert!(n < 10),
                Op::B => {}
            }
        }
    }

    #[test]
    fn streams_are_deterministic_per_name_and_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(crate::test_rng("t", 3).next_u64(), c.next_u64());
    }
}
